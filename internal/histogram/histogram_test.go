package histogram

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"noblsm/internal/vclock"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.String() != "histogram{empty}" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []vclock.Duration{10, 20, 30, 40} {
		h.Record(d * vclock.Microsecond)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 25*vclock.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10*vclock.Microsecond || h.Max() != 40*vclock.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestPercentilesApproximateSortedRank(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	var h Histogram
	var exact []vclock.Duration
	for i := 0; i < 20000; i++ {
		d := vclock.Duration(rnd.Int63n(int64(100 * vclock.Millisecond)))
		h.Record(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		want := exact[int(p/100*float64(len(exact)))-1]
		got := h.Percentile(p)
		// Buckets are ~25% wide in the worst case: the estimate must
		// be within one bucket of the exact value.
		ratio := float64(got) / float64(want)
		if ratio < 0.75 || ratio > 1.35 {
			t.Fatalf("p%.1f: got %v, exact %v (ratio %.2f)", p, got, want, ratio)
		}
	}
	if h.Percentile(100) != h.Max() {
		t.Fatalf("p100 = %v, max %v", h.Percentile(100), h.Max())
	}
}

func TestPercentileClampedToMax(t *testing.T) {
	var h Histogram
	h.Record(1000)
	if got := h.Percentile(99); got != 1000 {
		t.Fatalf("single-sample p99 = %v", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(20)
	b.Record(30)
	a.Merge(&b)
	if a.Count() != 3 || a.Mean() != 20 || a.Max() != 30 || a.Min() != 10 {
		t.Fatalf("merged: %v", a.String())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 3 {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 3 || empty.Min() != 10 {
		t.Fatalf("merge into empty: %v", empty.String())
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBucketMonotonicProperty(t *testing.T) {
	// Property: bucketFor is monotone and bucketUpper(bucketFor(d)) >= d.
	f := func(raw uint32) bool {
		d := vclock.Duration(raw)
		if d < 1 {
			d = 1
		}
		idx := bucketFor(d)
		if bucketUpper(idx) < d {
			return false
		}
		return bucketFor(d+1) >= idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeDurations(t *testing.T) {
	var h Histogram
	h.Record(0) // clamped to 1ns
	h.Record(vclock.Duration(1) << 61)
	if h.Count() != 2 {
		t.Fatal("extremes not recorded")
	}
	if h.Percentile(99) < h.Percentile(1) {
		t.Fatal("percentiles inverted")
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(vclock.Duration(i%1000) * vclock.Microsecond)
	}
}

// TestPercentileEmpty checks every percentile of an empty histogram
// is zero, including the boundaries.
func TestPercentileEmpty(t *testing.T) {
	var h Histogram
	for _, p := range []float64{0, 0.1, 50, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty p%v = %v, want 0", p, got)
		}
	}
}

// TestMergeDisjointRanges merges histograms over disjoint duration
// ranges and checks min/max (and the percentile extremes) survive in
// both merge directions.
func TestMergeDisjointRanges(t *testing.T) {
	var lo, hi Histogram
	for d := vclock.Duration(10); d <= 100; d += 10 {
		lo.Record(d * vclock.Nanosecond)
	}
	for d := vclock.Duration(10); d <= 100; d += 10 {
		hi.Record(d * vclock.Second)
	}

	merged := lo // copy
	merged.Merge(&hi)
	if merged.Count() != 20 {
		t.Fatalf("count = %d, want 20", merged.Count())
	}
	if merged.Min() != 10*vclock.Nanosecond {
		t.Fatalf("min = %v, want 10ns (from low range)", merged.Min())
	}
	if merged.Max() != 100*vclock.Second {
		t.Fatalf("max = %v, want 100s (from high range)", merged.Max())
	}

	// Other direction: high range absorbs the low one.
	merged2 := hi
	merged2.Merge(&lo)
	if merged2.Min() != 10*vclock.Nanosecond || merged2.Max() != 100*vclock.Second {
		t.Fatalf("reverse merge min/max = %v/%v", merged2.Min(), merged2.Max())
	}
	if merged2.Percentile(100) != merged2.Max() {
		t.Fatalf("merged p100 = %v, max %v", merged2.Percentile(100), merged2.Max())
	}
}

// TestPercentile100EqualsMax checks the p100 == Max identity across
// distributions, including single-sample and heavily skewed ones.
func TestPercentile100EqualsMax(t *testing.T) {
	cases := [][]vclock.Duration{
		{1},
		{1, 1, 1, vclock.Duration(7) * vclock.Second},
		{5, 4, 3, 2, 1},
	}
	for i, ds := range cases {
		var h Histogram
		for _, d := range ds {
			h.Record(d)
		}
		if got := h.Percentile(100); got != h.Max() {
			t.Fatalf("case %d: p100 = %v, max %v", i, got, h.Max())
		}
	}
	rnd := rand.New(rand.NewSource(9))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(vclock.Duration(rnd.Int63n(int64(vclock.Second))))
	}
	if got := h.Percentile(100); got != h.Max() {
		t.Fatalf("random: p100 = %v, max %v", got, h.Max())
	}
}
