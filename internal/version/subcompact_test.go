package version

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"noblsm/internal/keys"
)

func fileSpan(num uint64, lo, hi string) *FileMeta {
	return &FileMeta{
		Number:   num,
		Smallest: keys.MakeInternalKey(nil, []byte(lo), 100, keys.KindValue),
		Largest:  keys.MakeInternalKey(nil, []byte(hi), 1, keys.KindValue),
	}
}

func TestSubcompactionBoundaries(t *testing.T) {
	c := &Compaction{Level: 1}
	c.Inputs[0] = []*FileMeta{fileSpan(10, "c", "h"), fileSpan(11, "h", "m")}
	c.Inputs[1] = []*FileMeta{fileSpan(20, "a", "e"), fileSpan(21, "f", "j"), fileSpan(22, "k", "q")}

	t.Run("disjointCover", func(t *testing.T) {
		for n := 2; n <= 8; n++ {
			bs := c.SubcompactionBoundaries(n)
			if len(bs) == 0 {
				t.Fatalf("n=%d: no boundaries for a multi-file compaction", n)
			}
			if len(bs) > n-1 {
				t.Fatalf("n=%d: %d boundaries exceed the shard budget", n, len(bs))
			}
			smallest, largest := c.Range()
			for i, b := range bs {
				if i > 0 && keys.CompareUser(bs[i-1], b) >= 0 {
					t.Fatalf("n=%d: boundaries not strictly ascending: %q >= %q", n, bs[i-1], b)
				}
				// Both neighbouring shards must be non-empty.
				if keys.CompareUser(b, smallest) <= 0 || keys.CompareUser(b, largest) > 0 {
					t.Fatalf("n=%d: boundary %q outside (%q, %q]", n, b, smallest, largest)
				}
			}
		}
	})

	t.Run("boundariesComeFromFileEdges", func(t *testing.T) {
		edges := map[string]bool{}
		for _, f := range c.AllInputs() {
			edges[string(f.SmallestUser())] = true
			edges[string(f.LargestUser())] = true
		}
		for _, b := range c.SubcompactionBoundaries(8) {
			if !edges[string(b)] {
				t.Fatalf("boundary %q is not an input-file user-key bound", b)
			}
		}
	})

	t.Run("degenerate", func(t *testing.T) {
		if bs := c.SubcompactionBoundaries(1); bs != nil {
			t.Fatalf("n=1 must not shard, got %v", bs)
		}
		single := &Compaction{Level: 1}
		single.Inputs[0] = []*FileMeta{fileSpan(30, "a", "z")}
		if bs := single.SubcompactionBoundaries(4); bs != nil {
			t.Fatalf("single input with no interior edges must not shard, got %v", bs)
		}
		point := &Compaction{Level: 1}
		point.Inputs[0] = []*FileMeta{fileSpan(31, "k", "k")}
		if bs := point.SubcompactionBoundaries(4); bs != nil {
			t.Fatalf("point-range compaction must not shard, got %v", bs)
		}
	})

	t.Run("randomized", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			rc := &Compaction{Level: 1}
			nf := 1 + rng.Intn(8)
			for i := 0; i < nf; i++ {
				lo := rng.Intn(900)
				hi := lo + rng.Intn(100)
				which := rng.Intn(2)
				rc.Inputs[which] = append(rc.Inputs[which],
					fileSpan(uint64(100+i), fmt.Sprintf("%04d", lo), fmt.Sprintf("%04d", hi)))
			}
			if len(rc.AllInputs()) == 0 {
				continue
			}
			n := 2 + rng.Intn(6)
			bs := rc.SubcompactionBoundaries(n)
			if len(bs) > n-1 {
				t.Fatalf("trial %d: %d boundaries for n=%d", trial, len(bs), n)
			}
			if !sort.SliceIsSorted(bs, func(i, j int) bool { return bytes.Compare(bs[i], bs[j]) < 0 }) {
				t.Fatalf("trial %d: boundaries unsorted: %q", trial, bs)
			}
			smallest, largest := rc.Range()
			for i, b := range bs {
				if i > 0 && bytes.Equal(bs[i-1], b) {
					t.Fatalf("trial %d: duplicate boundary %q", trial, b)
				}
				if keys.CompareUser(b, smallest) <= 0 || keys.CompareUser(b, largest) > 0 {
					t.Fatalf("trial %d: boundary %q outside (%q, %q]", trial, b, smallest, largest)
				}
			}
		}
	})
}
