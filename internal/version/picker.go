package version

import (
	"noblsm/internal/keys"
)

// PickerOptions tune compaction triggering, mirroring LevelDB's
// constants with knobs the engine variants adjust.
type PickerOptions struct {
	// L0CompactionTrigger is the L0 file count that scores 1.0
	// (LevelDB: 4).
	L0CompactionTrigger int
	// BaseLevelBytes is the L1 capacity (LevelDB: 10 MiB).
	BaseLevelBytes int64
	// LevelMultiplier is the per-level capacity ratio (LevelDB: 10).
	LevelMultiplier float64
	// Fragmented selects PebblesDB-style compactions: inputs come
	// only from the picked level; outputs land in the next level
	// without merging its resident files.
	Fragmented bool
	// MinOverlapPick selects the input file with the least next-level
	// overlap (HyperLevelDB-style) instead of round-robin.
	MinOverlapPick bool
}

// DefaultPickerOptions mirrors stock LevelDB.
func DefaultPickerOptions() PickerOptions {
	return PickerOptions{
		L0CompactionTrigger: 4,
		BaseLevelBytes:      10 << 20,
		LevelMultiplier:     10,
	}
}

// MaxBytesForLevel reports the capacity of a level (level >= 1).
func (o PickerOptions) MaxBytesForLevel(level int) int64 {
	result := float64(o.BaseLevelBytes)
	for l := 1; l < level; l++ {
		result *= o.LevelMultiplier
	}
	return int64(result)
}

// Compaction describes the inputs of one major compaction from Level
// into Level+1.
type Compaction struct {
	Level int
	// Inputs[0] are Level files, Inputs[1] the overlapping Level+1
	// files (empty in fragmented mode).
	Inputs [2][]*FileMeta
	// Seek marks a seek-triggered compaction (LevelDB's
	// allowed_seeks exhaustion), as opposed to a size-triggered one.
	Seek bool
}

// Empty reports whether there is nothing to do.
func (c *Compaction) Empty() bool { return c == nil || len(c.Inputs[0]) == 0 }

// AllInputs yields every input file.
func (c *Compaction) AllInputs() []*FileMeta {
	out := make([]*FileMeta, 0, len(c.Inputs[0])+len(c.Inputs[1]))
	out = append(out, c.Inputs[0]...)
	return append(out, c.Inputs[1]...)
}

// InputBytes totals the input sizes.
func (c *Compaction) InputBytes() int64 {
	var n int64
	for _, f := range c.AllInputs() {
		n += f.Size
	}
	return n
}

// Range returns the user-key span of the inputs.
func (c *Compaction) Range() (smallest, largest []byte) {
	for _, f := range c.AllInputs() {
		if smallest == nil || keys.CompareUser(f.SmallestUser(), smallest) < 0 {
			smallest = f.SmallestUser()
		}
		if largest == nil || keys.CompareUser(f.LargestUser(), largest) > 0 {
			largest = f.LargestUser()
		}
	}
	return smallest, largest
}

// IsTrivialMove reports whether the compaction can be satisfied by
// moving a single input file down a level without rewriting it.
func (c *Compaction) IsTrivialMove() bool {
	return !c.Seek && len(c.Inputs[0]) == 1 && len(c.Inputs[1]) == 0
}

// Score computes a level's compaction pressure; >= 1 means due.
// Hot-zone files (L2SM model) live outside the leveled budget — they
// stand in for a log-assisted area — so they contribute no pressure;
// they still participate in compactions via range overlap.
func Score(v *Version, level int, o PickerOptions) float64 {
	if level == 0 {
		n := 0
		for _, f := range v.Files[0] {
			if !f.Hot {
				n++
			}
		}
		return float64(n) / float64(o.L0CompactionTrigger)
	}
	var size int64
	for _, f := range v.Files[level] {
		if !f.Hot {
			size += f.Size
		}
	}
	return float64(size) / float64(o.MaxBytesForLevel(level))
}

// PickCompaction selects the most pressured level and assembles a
// compaction, honouring round-robin pointers. It returns nil when no
// level scores >= 1.
func PickCompaction(v *Version, pointers *[NumLevels][]byte, o PickerOptions) *Compaction {
	bestLevel, bestScore := -1, 0.99999
	for level := 0; level < NumLevels-1; level++ {
		if s := Score(v, level, o); s > bestScore {
			bestLevel, bestScore = level, s
		}
	}
	if bestLevel < 0 {
		return nil
	}
	return SetupCompaction(v, bestLevel, pickInput(v, bestLevel, pointers, o), pointers, o)
}

// PickCompactionL0First is PickCompaction with an urgency bias for the
// admission governor: whenever L0 has compaction work at all (score
// >= 1), the L0→L1 compaction is picked even if a deeper level scores
// higher, because only L0 drain relieves foreground write pressure —
// deeper, wider majors merely reshuffle bytes the writers never wait
// on. preempted reports that a deeper level out-scored L0 and was
// deferred.
func PickCompactionL0First(v *Version, pointers *[NumLevels][]byte, o PickerOptions) (c *Compaction, preempted bool) {
	if Score(v, 0, o) < 1 {
		return PickCompaction(v, pointers, o), false
	}
	for level := 1; level < NumLevels-1; level++ {
		if Score(v, level, o) > Score(v, 0, o) {
			preempted = true
			break
		}
	}
	return SetupCompaction(v, 0, pickInput(v, 0, pointers, o), pointers, o), preempted
}

// pickInput selects the seed file at level.
func pickInput(v *Version, level int, pointers *[NumLevels][]byte, o PickerOptions) *FileMeta {
	files := v.Files[level]
	if len(files) == 0 {
		return nil
	}
	if o.MinOverlapPick && level > 0 {
		best, bestOverlap := files[0], int64(1<<62)
		for _, f := range files {
			var ov int64
			for _, g := range v.Overlapping(level+1, f.SmallestUser(), f.LargestUser()) {
				ov += g.Size
			}
			if ov < bestOverlap {
				best, bestOverlap = f, ov
			}
		}
		return best
	}
	ptr := pointers[level]
	for _, f := range files {
		if ptr == nil || keys.CompareInternal(f.Largest, ptr) > 0 {
			return f
		}
	}
	// Wrap around.
	return files[0]
}

// SeekCompaction builds a compaction for a seek-exhausted file.
func SeekCompaction(v *Version, level int, file *FileMeta, pointers *[NumLevels][]byte, o PickerOptions) *Compaction {
	c := SetupCompaction(v, level, file, pointers, o)
	if c != nil {
		c.Seek = true
	}
	return c
}

// SetupCompaction expands the seed file into the full input sets.
func SetupCompaction(v *Version, level int, seed *FileMeta, pointers *[NumLevels][]byte, o PickerOptions) *Compaction {
	if seed == nil {
		return nil
	}
	c := &Compaction{Level: level}
	c.Inputs[0] = []*FileMeta{seed}
	if level == 0 || o.Fragmented {
		// Overlapping files within a level (always at L0; at every
		// level in fragmented mode, where this implements PebblesDB's
		// whole-guard compaction) must move together, or an older
		// version could be left above a newer one.
		smallest, largest := seed.SmallestUser(), seed.LargestUser()
		for {
			expanded := v.Overlapping(level, smallest, largest)
			if len(expanded) == len(c.Inputs[0]) {
				break
			}
			c.Inputs[0] = expanded
			smallest, largest = c.rangeOf(0)
		}
	}
	if !o.Fragmented {
		smallest, largest := c.rangeOf(0)
		c.Inputs[1] = v.Overlapping(level+1, smallest, largest)
	}
	// Advance the round-robin pointer.
	var maxLargest []byte
	for _, f := range c.Inputs[0] {
		if maxLargest == nil || keys.CompareInternal(f.Largest, maxLargest) > 0 {
			maxLargest = f.Largest
		}
	}
	pointers[level] = append([]byte(nil), maxLargest...)
	return c
}

func (c *Compaction) rangeOf(which int) (smallest, largest []byte) {
	for _, f := range c.Inputs[which] {
		if smallest == nil || keys.CompareUser(f.SmallestUser(), smallest) < 0 {
			smallest = f.SmallestUser()
		}
		if largest == nil || keys.CompareUser(f.LargestUser(), largest) > 0 {
			largest = f.LargestUser()
		}
	}
	return smallest, largest
}
