package version

import (
	"encoding/binary"
	"errors"
	"fmt"

	"noblsm/internal/keys"
)

// VersionEdit is one mutation of the version state, encoded as a
// record in the MANIFEST log. Tags follow LevelDB, with file records
// extended by the inode number (NobLSM needs it at recovery).
type VersionEdit struct {
	HasLogNumber bool
	LogNumber    uint64

	HasNextFileNumber bool
	NextFileNumber    uint64

	HasLastSeq bool
	LastSeq    keys.SeqNum

	CompactPointers []CompactPointer
	DeletedFiles    []DeletedFile
	NewFiles        []NewFile
}

// CompactPointer remembers where round-robin compaction left off at a
// level.
type CompactPointer struct {
	Level int
	Key   []byte // internal key
}

// DeletedFile marks a file removed from a level.
type DeletedFile struct {
	Level  int
	Number uint64
}

// NewFile adds a file to a level.
type NewFile struct {
	Level int
	Meta  *FileMeta
}

// Record tags (mostly LevelDB's).
const (
	tagLogNumber      = 2
	tagNextFileNumber = 3
	tagLastSeq        = 4
	tagCompactPointer = 5
	tagDeletedFile    = 6
	tagNewFile        = 7
)

// SetLogNumber records the WAL in effect after this edit.
func (e *VersionEdit) SetLogNumber(n uint64) { e.HasLogNumber, e.LogNumber = true, n }

// SetNextFileNumber records the file-number allocator watermark.
func (e *VersionEdit) SetNextFileNumber(n uint64) { e.HasNextFileNumber, e.NextFileNumber = true, n }

// SetLastSeq records the newest sequence number.
func (e *VersionEdit) SetLastSeq(s keys.SeqNum) { e.HasLastSeq, e.LastSeq = true, s }

// AddFile appends a new-file record.
func (e *VersionEdit) AddFile(level int, meta *FileMeta) {
	e.NewFiles = append(e.NewFiles, NewFile{Level: level, Meta: meta})
}

// DeleteFile appends a deleted-file record.
func (e *VersionEdit) DeleteFile(level int, number uint64) {
	e.DeletedFiles = append(e.DeletedFiles, DeletedFile{Level: level, Number: number})
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Encode serializes the edit.
func (e *VersionEdit) Encode() []byte {
	var dst []byte
	if e.HasLogNumber {
		dst = binary.AppendUvarint(dst, tagLogNumber)
		dst = binary.AppendUvarint(dst, e.LogNumber)
	}
	if e.HasNextFileNumber {
		dst = binary.AppendUvarint(dst, tagNextFileNumber)
		dst = binary.AppendUvarint(dst, e.NextFileNumber)
	}
	if e.HasLastSeq {
		dst = binary.AppendUvarint(dst, tagLastSeq)
		dst = binary.AppendUvarint(dst, uint64(e.LastSeq))
	}
	for _, cp := range e.CompactPointers {
		dst = binary.AppendUvarint(dst, tagCompactPointer)
		dst = binary.AppendUvarint(dst, uint64(cp.Level))
		dst = appendBytes(dst, cp.Key)
	}
	for _, df := range e.DeletedFiles {
		dst = binary.AppendUvarint(dst, tagDeletedFile)
		dst = binary.AppendUvarint(dst, uint64(df.Level))
		dst = binary.AppendUvarint(dst, df.Number)
	}
	for _, nf := range e.NewFiles {
		dst = binary.AppendUvarint(dst, tagNewFile)
		dst = binary.AppendUvarint(dst, uint64(nf.Level))
		dst = binary.AppendUvarint(dst, nf.Meta.Number)
		dst = binary.AppendUvarint(dst, uint64(nf.Meta.Size))
		dst = binary.AppendUvarint(dst, uint64(nf.Meta.Ino))
		dst = appendBytes(dst, nf.Meta.Smallest)
		dst = appendBytes(dst, nf.Meta.Largest)
	}
	return dst
}

// ErrBadEdit reports a malformed manifest record.
var ErrBadEdit = errors.New("version: malformed version edit")

type decoder struct {
	p []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		return 0, ErrBadEdit
	}
	d.p = d.p[n:]
	return v, nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.p)) {
		return nil, ErrBadEdit
	}
	b := append([]byte(nil), d.p[:n]...)
	d.p = d.p[n:]
	return b, nil
}

// DecodeEdit parses a manifest record.
func DecodeEdit(p []byte) (*VersionEdit, error) {
	e := &VersionEdit{}
	d := &decoder{p: p}
	for len(d.p) > 0 {
		tag, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagLogNumber:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetLogNumber(v)
		case tagNextFileNumber:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetNextFileNumber(v)
		case tagLastSeq:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetLastSeq(keys.SeqNum(v))
		case tagCompactPointer:
			level, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			key, err := d.bytes()
			if err != nil {
				return nil, err
			}
			e.CompactPointers = append(e.CompactPointers, CompactPointer{Level: int(level), Key: key})
		case tagDeletedFile:
			level, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			num, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.DeleteFile(int(level), num)
		case tagNewFile:
			level, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			num, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			size, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			ino, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			smallest, err := d.bytes()
			if err != nil {
				return nil, err
			}
			largest, err := d.bytes()
			if err != nil {
				return nil, err
			}
			e.AddFile(int(level), &FileMeta{
				Number:   num,
				Size:     int64(size),
				Ino:      int64(ino),
				Smallest: smallest,
				Largest:  largest,
			})
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrBadEdit, tag)
		}
	}
	return e, nil
}

// Builder accumulates edits on top of a base version.
type Builder struct {
	base    *Version
	deleted [NumLevels]map[uint64]bool
	added   [NumLevels][]*FileMeta
}

// NewBuilder starts from base.
func NewBuilder(base *Version) *Builder {
	b := &Builder{base: base}
	for i := range b.deleted {
		b.deleted[i] = make(map[uint64]bool)
	}
	return b
}

// Apply folds one edit into the builder.
func (b *Builder) Apply(e *VersionEdit) {
	for _, df := range e.DeletedFiles {
		b.deleted[df.Level][df.Number] = true
	}
	for _, nf := range e.NewFiles {
		meta := nf.Meta
		if meta.AllowedSeeks == 0 {
			meta.AllowedSeeks = int(meta.Size / 16384)
			if meta.AllowedSeeks < 100 {
				meta.AllowedSeeks = 100
			}
		}
		delete(b.deleted[nf.Level], meta.Number)
		b.added[nf.Level] = append(b.added[nf.Level], meta)
	}
}

// Finish materializes the resulting version. Added files that a later
// edit deleted (the add edit preceded the delete edit during replay)
// are filtered out — an add after a delete resurrects the file because
// Apply removes it from the deleted set.
func (b *Builder) Finish() *Version {
	v := &Version{}
	for level := 0; level < NumLevels; level++ {
		files := make([]*FileMeta, 0, len(b.base.Files[level])+len(b.added[level]))
		for _, f := range b.base.Files[level] {
			if !b.deleted[level][f.Number] {
				files = append(files, f)
			}
		}
		for _, f := range b.added[level] {
			if !b.deleted[level][f.Number] {
				files = append(files, f)
			}
		}
		SortLevel(level, files)
		v.Files[level] = files
	}
	return v
}
