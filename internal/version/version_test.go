package version

import (
	"fmt"
	"testing"

	"noblsm/internal/keys"
)

func fm(num uint64, lo, hi string, size int64) *FileMeta {
	return &FileMeta{
		Number:   num,
		Size:     size,
		Smallest: keys.MakeInternalKey(nil, []byte(lo), 100, keys.KindValue),
		Largest:  keys.MakeInternalKey(nil, []byte(hi), 1, keys.KindValue),
	}
}

func TestOverlapping(t *testing.T) {
	v := &Version{}
	v.Files[1] = []*FileMeta{fm(1, "a", "c", 10), fm(2, "e", "g", 10), fm(3, "i", "k", 10)}
	SortLevel(1, v.Files[1])

	got := v.Overlapping(1, []byte("b"), []byte("f"))
	if len(got) != 2 || got[0].Number != 1 || got[1].Number != 2 {
		t.Fatalf("Overlapping(b,f) = %v", got)
	}
	if got := v.Overlapping(1, []byte("d"), []byte("d")); len(got) != 0 {
		t.Fatalf("gap overlap = %v", got)
	}
	if got := v.Overlapping(1, nil, nil); len(got) != 3 {
		t.Fatalf("unbounded overlap = %v", got)
	}
	if got := v.Overlapping(1, nil, []byte("e")); len(got) != 2 {
		t.Fatalf("left-unbounded overlap = %v", got)
	}
}

func TestForLookupLevel0NewestFirst(t *testing.T) {
	v := &Version{}
	v.Files[0] = []*FileMeta{fm(5, "a", "m", 10), fm(9, "g", "z", 10), fm(2, "a", "z", 10)}
	SortLevel(0, v.Files[0])
	got := v.ForLookup(0, []byte("h"), false)
	if len(got) != 3 || got[0].Number != 9 || got[1].Number != 5 || got[2].Number != 2 {
		var nums []uint64
		for _, f := range got {
			nums = append(nums, f.Number)
		}
		t.Fatalf("L0 lookup order = %v, want [9 5 2]", nums)
	}
	if got := v.ForLookup(0, []byte("e"), false); len(got) != 2 {
		t.Fatalf("lookup(e) = %d files", len(got))
	}
}

func TestForLookupSortedLevelBinarySearch(t *testing.T) {
	v := &Version{}
	v.Files[2] = []*FileMeta{fm(1, "a", "c", 10), fm(2, "e", "g", 10), fm(3, "i", "k", 10)}
	SortLevel(2, v.Files[2])
	if got := v.ForLookup(2, []byte("f"), false); len(got) != 1 || got[0].Number != 2 {
		t.Fatalf("lookup(f) = %v", got)
	}
	if got := v.ForLookup(2, []byte("d"), false); got != nil {
		t.Fatalf("lookup(d) = %v, want nil", got)
	}
	if got := v.ForLookup(2, []byte("z"), false); got != nil {
		t.Fatalf("lookup(z) = %v, want nil", got)
	}
}

func TestForLookupFragmentedScansOverlaps(t *testing.T) {
	v := &Version{}
	// Fragmented (PebblesDB-style) levels may overlap.
	v.Files[2] = []*FileMeta{fm(1, "a", "m", 10), fm(7, "c", "p", 10)}
	SortLevel(2, v.Files[2])
	got := v.ForLookup(2, []byte("d"), true)
	if len(got) != 2 || got[0].Number != 7 {
		t.Fatalf("fragmented lookup = %v, want newest-first both", got)
	}
}

func TestLiveFilesAndSizes(t *testing.T) {
	v := &Version{}
	v.Files[0] = []*FileMeta{fm(1, "a", "b", 100)}
	v.Files[3] = []*FileMeta{fm(2, "c", "d", 200), fm(3, "e", "f", 300)}
	live := v.LiveFiles()
	if len(live) != 3 || !live[1] || !live[2] || !live[3] {
		t.Fatalf("LiveFiles = %v", live)
	}
	if v.TotalSize(3) != 500 || v.NumFiles(3) != 2 {
		t.Fatal("sizes wrong")
	}
}

func TestEditEncodeDecodeRoundTrip(t *testing.T) {
	e := &VersionEdit{}
	e.SetLogNumber(42)
	e.SetNextFileNumber(99)
	e.SetLastSeq(12345)
	e.DeleteFile(2, 17)
	e.AddFile(3, &FileMeta{
		Number:   18,
		Size:     4096,
		Ino:      555,
		Smallest: keys.MakeInternalKey(nil, []byte("aa"), 9, keys.KindValue),
		Largest:  keys.MakeInternalKey(nil, []byte("zz"), 3, keys.KindDelete),
	})
	e.CompactPointers = append(e.CompactPointers, CompactPointer{Level: 1, Key: []byte("ptr")})

	d, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasLogNumber || d.LogNumber != 42 {
		t.Fatal("log number lost")
	}
	if !d.HasNextFileNumber || d.NextFileNumber != 99 {
		t.Fatal("next file lost")
	}
	if !d.HasLastSeq || d.LastSeq != 12345 {
		t.Fatal("last seq lost")
	}
	if len(d.DeletedFiles) != 1 || d.DeletedFiles[0] != (DeletedFile{2, 17}) {
		t.Fatal("deleted files lost")
	}
	if len(d.NewFiles) != 1 {
		t.Fatal("new files lost")
	}
	nf := d.NewFiles[0]
	if nf.Level != 3 || nf.Meta.Number != 18 || nf.Meta.Size != 4096 || nf.Meta.Ino != 555 {
		t.Fatalf("new file meta = %+v", nf)
	}
	if string(keys.UserKey(nf.Meta.Smallest)) != "aa" || string(keys.UserKey(nf.Meta.Largest)) != "zz" {
		t.Fatal("bounds lost")
	}
	if len(d.CompactPointers) != 1 || string(d.CompactPointers[0].Key) != "ptr" {
		t.Fatal("compact pointer lost")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeEdit([]byte{255, 255}); err == nil {
		t.Fatal("garbage decoded")
	}
	e := &VersionEdit{}
	e.SetLogNumber(1)
	enc := e.Encode()
	if _, err := DecodeEdit(enc[:1]); err == nil {
		t.Fatal("truncated edit decoded")
	}
}

func TestBuilderAppliesEdits(t *testing.T) {
	base := &Version{}
	base.Files[1] = []*FileMeta{fm(1, "a", "c", 10), fm(2, "e", "g", 10)}

	b := NewBuilder(base)
	e1 := &VersionEdit{}
	e1.DeleteFile(1, 1)
	e1.AddFile(1, fm(5, "h", "j", 20))
	b.Apply(e1)
	e2 := &VersionEdit{}
	e2.AddFile(2, fm(6, "a", "z", 30))
	b.Apply(e2)
	v := b.Finish()

	if v.NumFiles(1) != 2 || v.Files[1][0].Number != 2 || v.Files[1][1].Number != 5 {
		t.Fatalf("level 1 = %v", v.DebugString())
	}
	if v.NumFiles(2) != 1 || v.Files[2][0].Number != 6 {
		t.Fatalf("level 2 = %v", v.DebugString())
	}
	if base.NumFiles(1) != 2 {
		t.Fatal("builder mutated the base version")
	}
	if v.Files[2][0].AllowedSeeks != 100 {
		t.Fatalf("allowed seeks = %d, want floor 100", v.Files[2][0].AllowedSeeks)
	}
}

func TestAllowedSeeksScalesWithSize(t *testing.T) {
	b := NewBuilder(&Version{})
	e := &VersionEdit{}
	e.AddFile(1, fm(1, "a", "b", 64<<20))
	b.Apply(e)
	v := b.Finish()
	if got := v.Files[1][0].AllowedSeeks; got != (64<<20)/16384 {
		t.Fatalf("allowed seeks = %d", got)
	}
}

func TestScoreAndMaxBytes(t *testing.T) {
	o := DefaultPickerOptions()
	if o.MaxBytesForLevel(1) != 10<<20 {
		t.Fatal("L1 capacity wrong")
	}
	if o.MaxBytesForLevel(3) != 1000<<20 {
		t.Fatalf("L3 capacity = %d", o.MaxBytesForLevel(3))
	}
	v := &Version{}
	for i := 0; i < 8; i++ {
		v.Files[0] = append(v.Files[0], fm(uint64(i+1), "a", "b", 1))
	}
	if s := Score(v, 0, o); s != 2.0 {
		t.Fatalf("L0 score = %v", s)
	}
	v.Files[1] = []*FileMeta{fm(100, "a", "b", 5<<20)}
	if s := Score(v, 1, o); s != 0.5 {
		t.Fatalf("L1 score = %v", s)
	}
}

func TestPickCompactionChoosesHighestScore(t *testing.T) {
	o := DefaultPickerOptions()
	o.BaseLevelBytes = 100
	v := &Version{}
	v.Files[1] = []*FileMeta{fm(1, "a", "c", 300)} // score 3
	v.Files[2] = []*FileMeta{fm(2, "b", "d", 500)} // score 0.5
	var ptrs [NumLevels][]byte
	c := PickCompaction(v, &ptrs, o)
	if c == nil || c.Level != 1 {
		t.Fatalf("picked %+v", c)
	}
	if len(c.Inputs[0]) != 1 || c.Inputs[0][0].Number != 1 {
		t.Fatal("wrong input")
	}
	if len(c.Inputs[1]) != 1 || c.Inputs[1][0].Number != 2 {
		t.Fatal("missing next-level overlap")
	}
	if ptrs[1] == nil {
		t.Fatal("round-robin pointer not advanced")
	}
}

func TestPickCompactionNilWhenCalm(t *testing.T) {
	o := DefaultPickerOptions()
	v := &Version{}
	v.Files[1] = []*FileMeta{fm(1, "a", "c", 100)}
	var ptrs [NumLevels][]byte
	if c := PickCompaction(v, &ptrs, o); c != nil {
		t.Fatalf("picked %+v on a calm tree", c)
	}
}

func TestL0CompactionExpandsToClosure(t *testing.T) {
	o := DefaultPickerOptions()
	o.L0CompactionTrigger = 2
	v := &Version{}
	// Chained overlaps: a-c, b-e, d-g. Seeding any must pull all 3.
	v.Files[0] = []*FileMeta{fm(3, "d", "g", 1), fm(2, "b", "e", 1), fm(1, "a", "c", 1)}
	SortLevel(0, v.Files[0])
	var ptrs [NumLevels][]byte
	c := PickCompaction(v, &ptrs, o)
	if c == nil || len(c.Inputs[0]) != 3 {
		t.Fatalf("L0 closure = %+v", c)
	}
}

func TestRoundRobinPointerRotates(t *testing.T) {
	o := DefaultPickerOptions()
	o.BaseLevelBytes = 1 // everything over pressure
	v := &Version{}
	v.Files[1] = []*FileMeta{fm(1, "a", "c", 10), fm(2, "e", "g", 10), fm(3, "i", "k", 10)}
	SortLevel(1, v.Files[1])
	var ptrs [NumLevels][]byte
	var picked []uint64
	for i := 0; i < 3; i++ {
		c := PickCompaction(v, &ptrs, o)
		picked = append(picked, c.Inputs[0][0].Number)
	}
	if picked[0] != 1 || picked[1] != 2 || picked[2] != 3 {
		t.Fatalf("round robin picked %v", picked)
	}
	// Fourth pick wraps.
	c := PickCompaction(v, &ptrs, o)
	if c.Inputs[0][0].Number != 1 {
		t.Fatalf("wrap pick = %d", c.Inputs[0][0].Number)
	}
}

func TestMinOverlapPick(t *testing.T) {
	o := DefaultPickerOptions()
	o.BaseLevelBytes = 100
	o.MinOverlapPick = true
	v := &Version{}
	// L1 scores 3.0; L2 (capacity 1000) scores 0.5, so L1 is picked.
	v.Files[1] = []*FileMeta{fm(1, "a", "c", 150), fm(2, "e", "g", 150)}
	SortLevel(1, v.Files[1])
	// File 1 overlaps a large L2 file; file 2 overlaps nothing.
	v.Files[2] = []*FileMeta{fm(9, "a", "d", 500)}
	var ptrs [NumLevels][]byte
	c := PickCompaction(v, &ptrs, o)
	if c.Inputs[0][0].Number != 2 {
		t.Fatalf("min-overlap picked %d, want 2", c.Inputs[0][0].Number)
	}
}

func TestFragmentedSkipsNextLevelInputs(t *testing.T) {
	o := DefaultPickerOptions()
	o.BaseLevelBytes = 1
	o.Fragmented = true
	v := &Version{}
	v.Files[1] = []*FileMeta{fm(1, "a", "z", 10)}
	v.Files[2] = []*FileMeta{fm(2, "a", "z", 10)}
	var ptrs [NumLevels][]byte
	c := PickCompaction(v, &ptrs, o)
	if len(c.Inputs[1]) != 0 {
		t.Fatalf("fragmented compaction pulled next-level inputs: %+v", c.Inputs[1])
	}
}

func TestTrivialMove(t *testing.T) {
	c := &Compaction{Level: 1, Inputs: [2][]*FileMeta{{fm(1, "a", "b", 10)}, nil}}
	if !c.IsTrivialMove() {
		t.Fatal("single input, no overlap: not trivial?")
	}
	c.Seek = true
	if c.IsTrivialMove() {
		t.Fatal("seek compactions must rewrite")
	}
	c2 := &Compaction{Level: 1, Inputs: [2][]*FileMeta{{fm(1, "a", "b", 10)}, {fm(2, "a", "z", 10)}}}
	if c2.IsTrivialMove() {
		t.Fatal("overlapping compaction cannot move")
	}
}

func TestCompactionAccessors(t *testing.T) {
	c := &Compaction{Level: 1, Inputs: [2][]*FileMeta{
		{fm(1, "c", "f", 10)},
		{fm(2, "a", "d", 20), fm(3, "e", "k", 30)},
	}}
	if c.InputBytes() != 60 {
		t.Fatalf("input bytes = %d", c.InputBytes())
	}
	lo, hi := c.Range()
	if string(lo) != "a" || string(hi) != "k" {
		t.Fatalf("range = %q..%q", lo, hi)
	}
	if len(c.AllInputs()) != 3 {
		t.Fatal("AllInputs wrong")
	}
	var e *Compaction
	if !e.Empty() {
		t.Fatal("nil compaction not empty")
	}
}

func TestSeekCompactionFlag(t *testing.T) {
	v := &Version{}
	f := fm(1, "a", "z", 10)
	v.Files[1] = []*FileMeta{f}
	var ptrs [NumLevels][]byte
	c := SeekCompaction(v, 1, f, &ptrs, DefaultPickerOptions())
	if c == nil || !c.Seek {
		t.Fatalf("seek compaction = %+v", c)
	}
}

func TestDebugStringMentionsLevels(t *testing.T) {
	v := &Version{}
	v.Files[4] = []*FileMeta{fm(12, "a", "b", 77)}
	s := v.DebugString()
	if s != fmt.Sprintf("L4: 12(77B)\n") {
		t.Fatalf("DebugString = %q", s)
	}
}
