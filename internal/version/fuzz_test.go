package version

import (
	"bytes"
	"testing"

	"noblsm/internal/keys"
)

// fuzzSeedEdits builds representative encoded edits for the corpus:
// the shapes recovery and repair actually decode. Checked-in
// regressions live in testdata/fuzz/FuzzManifestDecode.
func fuzzSeedEdits() [][]byte {
	var seeds [][]byte
	add := func(e *VersionEdit) []byte {
		enc := e.Encode()
		seeds = append(seeds, enc)
		return enc
	}

	// Bootstrap snapshot.
	boot := &VersionEdit{}
	boot.SetLogNumber(2)
	boot.SetNextFileNumber(3)
	boot.SetLastSeq(0)
	add(boot)

	// Flush edit: one new L0 table, log rotation.
	flush := &VersionEdit{}
	flush.SetLogNumber(7)
	flush.SetNextFileNumber(9)
	flush.SetLastSeq(153)
	flush.AddFile(0, &FileMeta{Number: 8, Size: 53930, Ino: 12,
		Smallest: []byte("key-000\x00\x00\x00\x00\x00\x00\x01\x01"),
		Largest:  []byte("key-999\x00\x00\x00\x00\x00\x00\x99\x01")})
	add(flush)

	// Compaction edit: several outputs, several inputs deleted, a
	// compaction pointer.
	comp := &VersionEdit{}
	comp.SetNextFileNumber(20)
	comp.SetLastSeq(306)
	for i := uint64(15); i < 19; i++ {
		comp.AddFile(1, &FileMeta{Number: i, Size: 54942, Ino: int64(i) * 3,
			Smallest: []byte{byte(i), 0, 0, 0, 0, 0, 0, 0, 1},
			Largest:  []byte{byte(i) + 1, 0, 0, 0, 0, 0, 0, 0, 1}})
	}
	comp.DeleteFile(0, 14)
	comp.DeleteFile(1, 6)
	comp.CompactPointers = append(comp.CompactPointers,
		CompactPointer{Level: 1, Key: []byte("ptr\x00\x00\x00\x00\x00\x00\x01\x01")})
	big := add(comp)

	// Damage variants: truncation and a flipped tag byte.
	seeds = append(seeds, big[:len(big)/2])
	flipped := append([]byte(nil), big...)
	flipped[0] ^= 0x40
	seeds = append(seeds, flipped)
	seeds = append(seeds, nil, []byte{tagNewFile}, bytes.Repeat([]byte{0xFF}, 32))
	return seeds
}

// FuzzManifestDecode feeds arbitrary bytes through the manifest edit
// decoder and checks its safety contract: it terminates without
// panicking on any input, and any edit it accepts re-encodes to a
// canonical form that is a decode/encode fixed point — the property
// Repair relies on when it rebuilds a manifest from decoded history.
func FuzzManifestDecode(f *testing.F) {
	for _, seed := range fuzzSeedEdits() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		edit, err := DecodeEdit(data)
		if err != nil {
			return
		}
		enc := edit.Encode()
		if len(enc) > len(data) {
			t.Fatalf("canonical encoding (%d bytes) larger than accepted input (%d bytes)", len(enc), len(data))
		}
		edit2, err := DecodeEdit(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		enc2 := edit2.Encode()
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n first %x\nsecond %x", enc, enc2)
		}
		if edit.HasLastSeq && edit2.LastSeq != keys.SeqNum(uint64(edit.LastSeq)) {
			t.Fatalf("last seq changed across round trip: %d != %d", edit.LastSeq, edit2.LastSeq)
		}
	})
}
