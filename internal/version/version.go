// Package version implements the metadata core of the LSM-tree: the
// set of live SSTables per level (Version), the mutation records
// appended to the MANIFEST (VersionEdit), version construction from
// edit sequences (Builder), and compaction picking (size-triggered and
// seek-triggered), following LevelDB's design.
package version

import (
	"fmt"
	"sort"

	"noblsm/internal/keys"
)

// NumLevels is the number of on-disk levels (L0..L6).
const NumLevels = 7

// FileMeta describes one live SSTable.
type FileMeta struct {
	// Number is the file number ("000005.ldb").
	Number uint64
	// Size is the file length in bytes.
	Size int64
	// Smallest and Largest are the bounding internal keys.
	Smallest, Largest []byte
	// Ino is the inode number, which NobLSM registers with the
	// kernel's Pending Table via check_commit.
	Ino int64
	// AllowedSeeks is the read-miss budget before the file becomes a
	// seek-compaction candidate (LevelDB: size/16KiB, min 100).
	AllowedSeeks int
	// Hot marks an L2SM-style hot-retained output. Hot keys are
	// retained at their level for at most one compaction generation:
	// a compaction whose inputs include a hot file pushes everything
	// down. In-memory only (reset by recovery), which is safe — it
	// only influences compaction placement, never correctness.
	Hot bool
}

// SmallestUser and LargestUser return the user-key bounds.
func (f *FileMeta) SmallestUser() []byte { return keys.UserKey(f.Smallest) }

// LargestUser returns the largest user key in the file.
func (f *FileMeta) LargestUser() []byte { return keys.UserKey(f.Largest) }

func (f *FileMeta) String() string {
	return fmt.Sprintf("#%d(%s..%s, %dB)", f.Number, keys.String(f.Smallest), keys.String(f.Largest), f.Size)
}

// AfterFile reports whether ukey is past the file's range.
func (f *FileMeta) AfterFile(ukey []byte) bool {
	return keys.CompareUser(ukey, f.LargestUser()) > 0
}

// BeforeFile reports whether ukey is before the file's range.
func (f *FileMeta) BeforeFile(ukey []byte) bool {
	return keys.CompareUser(ukey, f.SmallestUser()) < 0
}

// Version is an immutable snapshot of the table set. New versions are
// produced by applying VersionEdits with a Builder.
type Version struct {
	// Files holds the tables of each level. Level 0 is ordered by
	// file number descending (newest first) and files may overlap;
	// levels >= 1 are ordered by smallest key and are disjoint,
	// unless the engine runs in fragmented (PebblesDB-style) mode,
	// in which case overlap is permitted and lookups scan like L0.
	Files [NumLevels][]*FileMeta
}

// NumFiles reports the file count at a level.
func (v *Version) NumFiles(level int) int { return len(v.Files[level]) }

// TotalSize reports the byte total of a level.
func (v *Version) TotalSize(level int) int64 {
	var n int64
	for _, f := range v.Files[level] {
		n += f.Size
	}
	return n
}

// LiveFiles returns the numbers of every file referenced by the
// version.
func (v *Version) LiveFiles() map[uint64]bool {
	live := make(map[uint64]bool)
	for level := 0; level < NumLevels; level++ {
		for _, f := range v.Files[level] {
			live[f.Number] = true
		}
	}
	return live
}

// Overlapping returns the files at level whose user-key ranges
// intersect [smallest, largest]. A nil bound is unbounded. For level 0
// the expansion rule of LevelDB applies upstream; this is the raw
// intersection.
func (v *Version) Overlapping(level int, smallest, largest []byte) []*FileMeta {
	var out []*FileMeta
	for _, f := range v.Files[level] {
		if smallest != nil && f.AfterFile(smallest) {
			continue
		}
		if largest != nil && f.BeforeFile(largest) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// SortLevel orders files for their level's invariant.
func SortLevel(level int, files []*FileMeta) {
	if level == 0 {
		sort.Slice(files, func(i, j int) bool { return files[i].Number > files[j].Number })
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if c := keys.CompareInternal(files[i].Smallest, files[j].Smallest); c != 0 {
			return c < 0
		}
		return files[i].Number < files[j].Number
	})
}

// ForLookup returns the candidate files for a point lookup of ukey at
// a level, in the order they must be consulted. fragmented selects the
// PebblesDB-style scan-all-overlapping discipline for levels >= 1.
func (v *Version) ForLookup(level int, ukey []byte, fragmented bool) []*FileMeta {
	if level == 0 || fragmented {
		var out []*FileMeta
		for _, f := range v.Files[level] {
			if !f.AfterFile(ukey) && !f.BeforeFile(ukey) {
				out = append(out, f)
			}
		}
		if level != 0 {
			// Newer files shadow older ones.
			sort.Slice(out, func(i, j int) bool { return out[i].Number > out[j].Number })
		}
		return out
	}
	files := v.Files[level]
	idx := sort.Search(len(files), func(i int) bool {
		return keys.CompareUser(files[i].LargestUser(), ukey) >= 0
	})
	if idx < len(files) && !files[idx].BeforeFile(ukey) {
		return files[idx : idx+1]
	}
	return nil
}

// Clone returns a deep-enough copy (file metas are shared; slices are
// fresh) for Builder use.
func (v *Version) Clone() *Version {
	nv := &Version{}
	for level := range v.Files {
		nv.Files[level] = append([]*FileMeta(nil), v.Files[level]...)
	}
	return nv
}

// DebugString renders the level populations.
func (v *Version) DebugString() string {
	s := ""
	for level := 0; level < NumLevels; level++ {
		if len(v.Files[level]) == 0 {
			continue
		}
		s += fmt.Sprintf("L%d:", level)
		for _, f := range v.Files[level] {
			s += fmt.Sprintf(" %d(%dB)", f.Number, f.Size)
		}
		s += "\n"
	}
	return s
}
