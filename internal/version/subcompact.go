package version

import (
	"slices"

	"noblsm/internal/keys"
)

// SubcompactionBoundaries picks up to n-1 user keys that split the
// compaction's key range into at most n disjoint shards, RocksDB-
// style: candidates are the input files' own user-key bounds, so every
// boundary coincides with a file edge and shards inherit the inputs'
// size distribution without reading any data. Boundaries are returned
// in ascending order; shard i covers [b[i-1], b[i]) with the first
// shard open below and the last open above.
//
// Splitting at user-key granularity guarantees all versions of one
// user key land in a single shard, which the merge's version-retention
// logic (and the no-straddle output invariant) requires.
func (c *Compaction) SubcompactionBoundaries(n int) [][]byte {
	if n <= 1 {
		return nil
	}
	smallest, largest := c.Range()
	if smallest == nil || keys.CompareUser(smallest, largest) >= 0 {
		return nil
	}
	var cands [][]byte
	for _, f := range c.AllInputs() {
		for _, k := range [][]byte{f.SmallestUser(), f.LargestUser()} {
			// A boundary must leave both its neighbouring shards
			// usefully non-empty: strictly inside the overall range
			// (a boundary at the overall largest would shard off a
			// single trailing user key).
			if keys.CompareUser(k, smallest) > 0 && keys.CompareUser(k, largest) < 0 {
				cands = append(cands, k)
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	slices.SortFunc(cands, keys.CompareUser)
	cands = slices.CompactFunc(cands, func(a, b []byte) bool { return keys.CompareUser(a, b) == 0 })
	if len(cands) > n-1 {
		// Evenly thin the candidate list down to n-1 boundaries.
		picked := make([][]byte, 0, n-1)
		for i := 1; i < n; i++ {
			picked = append(picked, cands[i*len(cands)/n])
		}
		picked = slices.CompactFunc(picked, func(a, b []byte) bool { return keys.CompareUser(a, b) == 0 })
		cands = picked
	}
	out := make([][]byte, len(cands))
	for i, k := range cands {
		out[i] = append([]byte(nil), k...)
	}
	return out
}
