// Package sstable implements the on-disk sorted-table format, after
// LevelDB's:
//
//	[data block 1][trailer] ... [data block n][trailer]
//	[filter block][trailer]
//	[metaindex block][trailer]
//	[index block][trailer]
//	[footer]
//
// Each block trailer is a codec byte (0 = raw, else an
// internal/compress level; see Compression) plus a CRC-32C over the
// stored payload and the codec byte — so a torn or bit-rotted block,
// compressed or not, is detected on read before any decode is
// attempted, which the crash and fault tests rely on. The footer is
// fixed-size: the metaindex and index block handles, zero padding,
// and an 8-byte magic number.
//
// Unlike LevelDB's 2 KiB-interval filter block, the filter here is a
// single whole-table bloom filter (as RocksDB's full-filter mode),
// which preserves the behaviour that matters to the paper: point
// lookups skip tables that cannot contain the key.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"noblsm/internal/block"
	"noblsm/internal/bloom"
	"noblsm/internal/cache"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

const (
	blockTrailerLen = 5
	footerLen       = 48
	magic           = 0xdb4775248b80fb57
	filterName      = "filter.noblsm.bloom"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a damaged table image.
var ErrCorrupt = errors.New("sstable: corrupt table")

// Handle locates a block within the file.
type Handle struct {
	Offset, Size uint64
}

func (h Handle) encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, h.Offset)
	return binary.AppendUvarint(dst, h.Size)
}

func decodeHandle(p []byte) (Handle, int, error) {
	off, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		return Handle{}, 0, fmt.Errorf("%w: bad handle", ErrCorrupt)
	}
	sz, n2 := binary.Uvarint(p[n1:])
	if n2 <= 0 {
		return Handle{}, 0, fmt.Errorf("%w: bad handle", ErrCorrupt)
	}
	return Handle{Offset: off, Size: sz}, n1 + n2, nil
}

// Options configure table building and reading.
type Options struct {
	// BlockSize is the uncompressed payload size threshold at which
	// a data block is cut (LevelDB default 4 KiB).
	BlockSize int
	// RestartInterval for data blocks (default 16).
	RestartInterval int
	// BloomBitsPerKey sizes the table filter; 0 disables filtering.
	BloomBitsPerKey int
	// Compression selects the per-block codec for built blocks
	// (default NoCompression). Reading is always tag-driven.
	Compression Compression
	// Scratch, when non-nil, lends the builder reusable filter and
	// encoder buffers across tables (one flush or compaction shard).
	Scratch *BuildScratch
	// CompressedCache, when non-nil, caches stored (still-compressed)
	// block payloads so warm blocks stay resident at the codec's
	// density and pay only decode — no device read — on a hit. The
	// uncompressed tier passed to Open sits above it.
	CompressedCache *cache.Cache
	// ReadaheadBlocks caps the iterator readahead window, in blocks
	// (0 or 1 disables). Sequential scans ramp 1→N and fetch whole
	// windows in one device request; any Seek cancels the window.
	ReadaheadBlocks int
	// CodecCostDiv divides per-byte codec CPU charges, mirroring the
	// harness data-scale applied to device bytes (default 1).
	CodecCostDiv int64
}

// DefaultOptions mirror LevelDB's defaults with a 10-bit bloom filter.
func DefaultOptions() Options {
	return Options{BlockSize: 4096, RestartInterval: 16, BloomBitsPerKey: 10}
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = 16
	}
	return o
}

// Builder streams sorted entries into an SSTable file.
type Builder struct {
	f    vfs.File
	opts Options

	data  *block.Builder
	index *block.Builder

	offset      uint64
	pendingIkey []byte // last key of the finished block awaiting separator
	pendingH    Handle
	hasPending  bool

	filterKeys [][]byte
	filter     *bloom.Filter

	smallest, largest []byte
	entries           int
	wbuf              []byte
	err               error
}

// NewBuilder returns a builder writing to f.
func NewBuilder(f vfs.File, opts Options) *Builder {
	opts = opts.withDefaults()
	b := &Builder{
		f:     f,
		opts:  opts,
		data:  block.NewBuilder(opts.RestartInterval),
		index: block.NewBuilder(1),
	}
	if opts.BloomBitsPerKey > 0 {
		b.filter = bloom.New(opts.BloomBitsPerKey)
	}
	return b
}

// Add appends an entry; internal keys must be strictly increasing.
func (b *Builder) Add(tl *vclock.Timeline, ikey, value []byte) error {
	if b.err != nil {
		return b.err
	}
	if b.hasPending {
		sep := keys.SeparatorInternal(b.pendingIkey, ikey)
		b.index.Add(sep, b.pendingH.encode(nil))
		b.hasPending = false
	}
	if b.smallest == nil {
		b.smallest = append([]byte(nil), ikey...)
	}
	b.largest = append(b.largest[:0], ikey...)
	if b.filter != nil {
		b.filterKeys = append(b.filterKeys, append([]byte(nil), keys.UserKey(ikey)...))
	}
	b.data.Add(ikey, value)
	b.entries++
	if b.data.EstimatedSize() >= b.opts.BlockSize {
		b.err = b.flushDataBlock(tl, ikey)
	}
	return b.err
}

func (b *Builder) flushDataBlock(tl *vclock.Timeline, lastIkey []byte) error {
	h, err := b.writeBlock(tl, b.data.Finish())
	if err != nil {
		return err
	}
	b.data.Reset()
	b.pendingIkey = append(b.pendingIkey[:0], lastIkey...)
	b.pendingH = h
	b.hasPending = true
	return nil
}

// writeBlock compresses contents per the configured codec (keeping
// the raw bytes when compression does not pay), then appends the
// stored payload plus the codec/CRC trailer as a single write (one
// syscall per block, like LevelDB's buffered WritableFile). The CRC
// covers the stored payload and the codec byte, so corruption is
// caught before any decode runs.
func (b *Builder) writeBlock(tl *vclock.Timeline, contents []byte) (Handle, error) {
	payload, codec := b.encodeBlock(tl, contents)
	h := Handle{Offset: b.offset, Size: uint64(len(payload))}
	crc := crc32.New(castagnoli)
	crc.Write(payload)
	crc.Write([]byte{codec})
	b.wbuf = append(b.wbuf[:0], payload...)
	b.wbuf = append(b.wbuf, codec)
	b.wbuf = binary.LittleEndian.AppendUint32(b.wbuf, crc.Sum32())
	if err := b.f.Append(tl, b.wbuf); err != nil {
		return Handle{}, err
	}
	b.offset += uint64(len(payload)) + blockTrailerLen
	return h, nil
}

// Finish flushes remaining blocks, writes filter, metaindex, index and
// footer. The file is not synced — durability policy is the engine's
// decision (that is the whole point of NobLSM).
func (b *Builder) Finish(tl *vclock.Timeline) error {
	if b.err != nil {
		return b.err
	}
	if !b.data.Empty() {
		if err := b.flushDataBlock(tl, b.largest); err != nil {
			return err
		}
	}
	if b.hasPending {
		b.index.Add(keys.SuccessorInternal(b.pendingIkey), b.pendingH.encode(nil))
		b.hasPending = false
	}

	// Filter block. The scratch lends its dst so a flush or
	// compaction shard building many tables allocates one filter
	// buffer, not one per table.
	meta := block.NewBuilder(1)
	if b.filter != nil && len(b.filterKeys) > 0 {
		var fdst []byte
		if b.opts.Scratch != nil {
			fdst = b.opts.Scratch.filter[:0]
		}
		fb := b.filter.Build(fdst, b.filterKeys)
		if b.opts.Scratch != nil {
			b.opts.Scratch.filter = fb
		}
		fh, err := b.writeBlock(tl, fb)
		if err != nil {
			return err
		}
		meta.Add([]byte(filterName), fh.encode(nil))
	}
	metaH, err := b.writeBlock(tl, meta.Finish())
	if err != nil {
		return err
	}
	indexH, err := b.writeBlock(tl, b.index.Finish())
	if err != nil {
		return err
	}

	footer := make([]byte, 0, footerLen)
	footer = metaH.encode(footer)
	footer = indexH.encode(footer)
	for len(footer) < footerLen-8 {
		footer = append(footer, 0)
	}
	footer = binary.LittleEndian.AppendUint64(footer, magic)
	return b.f.Append(tl, footer)
}

// Entries reports how many entries were added.
func (b *Builder) Entries() int { return b.entries }

// FileSize reports the bytes written so far (post-Finish: final size).
func (b *Builder) FileSize() int64 { return b.f.Size() }

// Smallest and Largest report the key range (valid after ≥1 Add).
func (b *Builder) Smallest() []byte { return b.smallest }

// Largest reports the largest added internal key.
func (b *Builder) Largest() []byte { return b.largest }
