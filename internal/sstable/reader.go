package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"noblsm/internal/block"
	"noblsm/internal/bloom"
	"noblsm/internal/cache"
	"noblsm/internal/compress"
	"noblsm/internal/iterator"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// Reader provides point lookups and iteration over one SSTable file.
type Reader struct {
	f       vfs.File
	cacheID uint64
	blocks  *cache.Cache // shared uncompressed-block cache; may be nil
	cblocks *cache.Cache // shared compressed-payload cache; may be nil
	index   *block.Reader
	filter  []byte // whole-table bloom filter; nil if absent
	policy  *bloom.Filter

	codecDiv  int64  // scale divisor for codec CPU charges
	raMax     int    // iterator readahead cap, in blocks (≤1 off)
	blockSize int    // configured block size, for readahead windows
	dataEnd   uint64 // file offset where data blocks end
}

// compressedBlock is a compressed-tier cache entry: a CRC-verified
// stored payload plus its codec tag, ~2-3× denser than the parsed
// block the uncompressed tier holds.
type compressedBlock struct {
	codec byte
	data  []byte
}

// Open validates the footer and loads the index and filter blocks.
// cacheID must be unique per file (the engine uses the file number);
// blocks may be nil to disable block caching.
func Open(tl *vclock.Timeline, f vfs.File, opts Options, cacheID uint64, blocks *cache.Cache) (*Reader, error) {
	opts = opts.withDefaults()
	size := f.Size()
	if size < footerLen {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(tl, footer, size-footerLen); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint64(footer[footerLen-8:]); got != magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	metaH, n, err := decodeHandle(footer)
	if err != nil {
		return nil, err
	}
	indexH, _, err := decodeHandle(footer[n:])
	if err != nil {
		return nil, err
	}

	r := &Reader{
		f: f, cacheID: cacheID, blocks: blocks,
		cblocks:   opts.CompressedCache,
		policy:    bloom.New(opts.BloomBitsPerKey),
		codecDiv:  opts.CodecCostDiv,
		raMax:     opts.ReadaheadBlocks,
		blockSize: opts.BlockSize,
	}
	// Data blocks end where the first meta-region block begins
	// (refined below if a filter block sits before the metaindex);
	// readahead windows never reach past this.
	r.dataEnd = metaH.Offset
	if indexH.Offset < r.dataEnd {
		r.dataEnd = indexH.Offset
	}

	indexData, err := r.readBlockRaw(tl, indexH, false)
	if err != nil {
		return nil, err
	}
	r.index, err = block.NewReader(indexData, keys.CompareInternal)
	if err != nil {
		return nil, err
	}

	metaData, err := r.readBlockRaw(tl, metaH, false)
	if err != nil {
		return nil, err
	}
	meta, err := block.NewReader(metaData, keys.CompareUser)
	if err != nil {
		return nil, err
	}
	mit := meta.NewIter()
	for mit.First(); mit.Valid(); mit.Next() {
		if string(mit.Key()) == filterName {
			fh, _, err := decodeHandle(mit.Value())
			if err != nil {
				return nil, err
			}
			if fh.Offset < r.dataEnd {
				r.dataEnd = fh.Offset
			}
			r.filter, err = r.readBlockRaw(tl, fh, false)
			if err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// Close releases the underlying file handle. The reader must not be
// used afterwards.
func (r *Reader) Close(tl *vclock.Timeline) error {
	return r.f.Close(tl)
}

// blockBufPool recycles block read buffers for compaction scans: a
// compaction reads every input block exactly once and discards it as
// soon as its iterator moves on, so without recycling these buffers
// were the second-largest allocation source in write benchmarks.
var blockBufPool sync.Pool

func getBlockBuf(n int) []byte {
	if v := blockBufPool.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putBlockBuf(b []byte) {
	b = b[:cap(b)]
	blockBufPool.Put(&b)
}

// ReleaseBlockBuf recycles a pool-drawn block buffer handed out by
// BlockSource.Next. Callers must guarantee no reference into the
// buffer survives the call.
func ReleaseBlockBuf(b []byte) { putBlockBuf(b) }

// readBlockPayload reads and CRC-verifies the block at h, bypassing
// the caches, and returns the stored (possibly still compressed)
// payload with its codec tag. pooled draws the buffer from
// blockBufPool; the caller then owns it and is responsible for
// recycling.
func (r *Reader) readBlockPayload(tl *vclock.Timeline, h Handle, pooled bool) ([]byte, byte, error) {
	var buf []byte
	if pooled {
		buf = getBlockBuf(int(h.Size) + blockTrailerLen)
	} else {
		buf = make([]byte, h.Size+blockTrailerLen)
	}
	if _, err := r.f.ReadAt(tl, buf, int64(h.Offset)); err != nil {
		if errors.Is(err, io.EOF) {
			// A short read against a handle from the CRC-verified index
			// is real damage: the file lost its tail.
			return nil, 0, fmt.Errorf("%w: truncated block at %d: %v", ErrCorrupt, h.Offset, err)
		}
		// Any other failure (e.g. an injected transient fault) is an I/O
		// error, not corruption — the caller's retry path handles it.
		return nil, 0, err
	}
	if err := verifyBlockTrailer(buf[:h.Size], buf[h.Size:], h.Offset); err != nil {
		return nil, 0, err
	}
	return buf[:h.Size], buf[h.Size], nil
}

// readBlockRaw reads, CRC-verifies and decodes the block at h,
// bypassing the caches. pooled draws the returned buffer from
// blockBufPool; the caller then owns it and is responsible for
// recycling.
func (r *Reader) readBlockRaw(tl *vclock.Timeline, h Handle, pooled bool) ([]byte, error) {
	payload, codec, err := r.readBlockPayload(tl, h, pooled)
	if err != nil {
		return nil, err
	}
	if codec == 0 {
		return payload, nil
	}
	var dst []byte
	if pooled {
		n, err := compress.DecodedLen(payload)
		if err != nil {
			putBlockBuf(payload)
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		dst = getBlockBuf(n)
	}
	dec, err := r.decodePayload(tl, payload, codec, dst)
	if pooled {
		putBlockBuf(payload)
	}
	if err != nil {
		if pooled && dst != nil {
			putBlockBuf(dst)
		}
		return nil, err
	}
	return dec, nil
}

// verifyBlockTrailer checks the CRC-32C trailer over contents plus the
// compression byte.
func verifyBlockTrailer(contents, trailer []byte, off uint64) error {
	crc := crc32.New(castagnoli)
	crc.Write(contents)
	crc.Write(trailer[:1])
	if crc.Sum32() != binary.LittleEndian.Uint32(trailer[1:]) {
		return fmt.Errorf("%w: block CRC mismatch at %d", ErrCorrupt, off)
	}
	return nil
}

// compactionBlock loads and CRC-verifies the data block at h for a
// compaction scan, preferring a zero-copy page-cache view when the
// file supports it (vfs.ViewReader and the block does not straddle an
// extent chunk). owned is the pool-drawn buffer backing the block on
// the copy path — the caller recycles it via ReleaseBlockBuf once the
// block is dead — and nil on the view path, whose backing memory stays
// valid while the table's file handle is open.
func (r *Reader) compactionBlock(tl *vclock.Timeline, h Handle) (*block.Reader, []byte, error) {
	if vr, ok := r.f.(vfs.ViewReader); ok {
		buf, ok, err := vr.ReadView(tl, int(h.Size)+blockTrailerLen, int64(h.Offset))
		if err != nil {
			return nil, nil, err
		}
		if ok {
			if err := verifyBlockTrailer(buf[:h.Size], buf[h.Size:], h.Offset); err != nil {
				return nil, nil, err
			}
			if codec := buf[h.Size]; codec != 0 {
				// Compressed blocks cannot be served zero-copy; decode
				// into a pooled buffer the caller recycles.
				n, err := compress.DecodedLen(buf[:h.Size])
				if err != nil {
					return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				dec, err := r.decodePayload(tl, buf[:h.Size], codec, getBlockBuf(n))
				if err != nil {
					return nil, nil, err
				}
				br, err := block.NewReader(dec, keys.CompareInternal)
				if err != nil {
					putBlockBuf(dec)
					return nil, nil, err
				}
				return br, dec, nil
			}
			br, err := block.NewReader(buf[:h.Size:h.Size], keys.CompareInternal)
			return br, nil, err
		}
	}
	data, err := r.readBlockRaw(tl, h, true)
	if err != nil {
		return nil, nil, err
	}
	br, err := block.NewReader(data, keys.CompareInternal)
	if err != nil {
		ReleaseBlockBuf(data)
		return nil, nil, err
	}
	return br, data, nil
}

// BlockSource streams the data blocks of one table in key order for a
// compaction shard: a pull API the engine's read stage drives from its
// own goroutine, charging block loads to its own timeline. start and
// stop are internal keys bounding the shard ([start, stop), nil =
// open); the source over-approximates by at most one block on each
// side — the first emitted block is the one containing start, and the
// final one is the first whose index separator reaches stop, after
// which no further block can hold keys below stop.
type BlockSource struct {
	r       *Reader
	tl      *vclock.Timeline
	idx     *block.Iter
	start   []byte
	stop    []byte
	started bool
	done    bool
	err     error
}

// NewBlockSource returns a source over the data blocks overlapping
// [start, stop) in internal-key space.
func (r *Reader) NewBlockSource(tl *vclock.Timeline, start, stop []byte) *BlockSource {
	return &BlockSource{r: r, tl: tl, idx: r.index.NewIter(), start: start, stop: stop}
}

// Next returns the next data block, or ok=false at the end of the
// range (check Err). owned follows the compactionBlock contract.
func (s *BlockSource) Next() (br *block.Reader, owned []byte, ok bool) {
	if s.done || s.err != nil {
		return nil, nil, false
	}
	if !s.started {
		s.started = true
		if s.start != nil {
			s.idx.Seek(s.start)
		} else {
			s.idx.First()
		}
	} else {
		s.idx.Next()
	}
	if !s.idx.Valid() {
		s.done = true
		s.err = s.idx.Err()
		return nil, nil, false
	}
	h, _, err := decodeHandle(s.idx.Value())
	if err != nil {
		s.done, s.err = true, err
		return nil, nil, false
	}
	br, owned, err = s.r.compactionBlock(s.tl, h)
	if err != nil {
		s.done, s.err = true, err
		return nil, nil, false
	}
	if s.stop != nil && keys.CompareInternal(s.idx.Key(), s.stop) >= 0 {
		// The index separator is ≥ all keys in this block and < all
		// keys in later blocks: nothing past this block is below stop.
		s.done = true
	}
	return br, owned, true
}

// Err reports the first error the source hit.
func (s *BlockSource) Err() error { return s.err }

// dataBlock returns a parsed data block, via the shared cache when
// available. fillCache=false serves hits but never inserts — for
// compaction scans, which touch every block of their inputs exactly
// once and would otherwise flush the cache's working set (LevelDB's
// ReadOptions::fill_cache). In that mode the second return value is
// the privately owned, pool-drawn buffer backing the block (nil on a
// cache hit); the caller recycles it via putBlockBuf once the block is
// no longer referenced.
func (r *Reader) dataBlock(tl *vclock.Timeline, h Handle, fillCache bool) (*block.Reader, []byte, error) {
	key := cache.Key{ID: r.cacheID, Off: h.Offset}
	// Hot tier: the parsed block, decode already paid.
	if r.blocks != nil {
		if v, ok := r.blocks.Get(key); ok {
			return v.(*block.Reader), nil, nil
		}
	}
	// Warm tier: the stored payload, cache-resident at the codec's
	// density — a hit pays decode but no device read.
	if fillCache && r.cblocks != nil {
		if v, ok := r.cblocks.Get(key); ok {
			cb := v.(compressedBlock)
			dec, err := r.decodePayload(tl, cb.data, cb.codec, nil)
			if err != nil {
				return nil, nil, err
			}
			br, err := block.NewReader(dec, keys.CompareInternal)
			if err != nil {
				return nil, nil, err
			}
			if r.blocks != nil {
				r.blocks.Put(key, br, int64(len(dec)))
			}
			return br, nil, nil
		}
	}
	payload, codec, err := r.readBlockPayload(tl, h, !fillCache)
	if err != nil {
		return nil, nil, err
	}
	data := payload
	if codec != 0 {
		var dst []byte
		if !fillCache {
			n, err := compress.DecodedLen(payload)
			if err != nil {
				putBlockBuf(payload)
				return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			dst = getBlockBuf(n)
		}
		data, err = r.decodePayload(tl, payload, codec, dst)
		if err != nil {
			if !fillCache {
				putBlockBuf(payload)
				if dst != nil {
					putBlockBuf(dst)
				}
			}
			return nil, nil, err
		}
		if fillCache && r.cblocks != nil {
			r.cblocks.Put(key, compressedBlock{codec: codec, data: payload}, int64(len(payload)))
		}
		if !fillCache {
			putBlockBuf(payload)
		}
	}
	br, err := block.NewReader(data, keys.CompareInternal)
	if err != nil {
		return nil, nil, err
	}
	if r.blocks != nil && fillCache {
		r.blocks.Put(key, br, int64(len(data)))
		return br, nil, nil
	}
	if !fillCache {
		return br, data, nil
	}
	return br, nil, nil
}

// MayContain consults the table bloom filter for ukey. A nil filter
// always reports true.
func (r *Reader) MayContain(ukey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.policy.MayContain(r.filter, ukey)
}

// Get finds the first entry with internal key >= seek and returns its
// key and value. found is false if the table holds no such entry. The
// engine layers snapshot/user-key checks on top.
func (r *Reader) Get(tl *vclock.Timeline, seek []byte) (ikey, value []byte, found bool, err error) {
	it := r.NewIterator(tl)
	it.Seek(seek)
	if err := it.Err(); err != nil {
		return nil, nil, false, err
	}
	if !it.Valid() {
		return nil, nil, false, nil
	}
	return it.Key(), it.Value(), true, nil
}

// Iter is a two-level iterator: an index cursor selecting data blocks
// and a data cursor within the current block.
type Iter struct {
	r    *Reader
	tl   *vclock.Timeline
	idx  *block.Iter
	data *block.Iter
	err  error
	// noFill skips block-cache insertion (compaction scans); owned is
	// the pool-drawn buffer backing the current block in that mode,
	// recycled when the iterator moves to the next block.
	noFill bool
	owned  []byte

	// Readahead state (active only when r.raMax > 1 and !noFill): a
	// scan that loads consecutive blocks ramps a prefetch window
	// 1→raMax blocks, fetched as one device request and served
	// block by block; see fetchBlock.
	raNext   uint64 // expected offset of the next sequential block
	raStreak int    // consecutive sequential block loads
	raWin    int    // current window size, in blocks
	raBuf    []byte // prefetched raw file bytes, nil when none
	raOff    uint64 // file offset of raBuf[0]
	raView   bool   // raBuf aliases a page-cache view (not pooled)
}

// raNone marks "no sequential predecessor" (offset 0 is a real block).
const raNone = ^uint64(0)

// NewIterator returns an iterator over the whole table, charging block
// reads to tl.
func (r *Reader) NewIterator(tl *vclock.Timeline) *Iter {
	return &Iter{r: r, tl: tl, idx: r.index.NewIter(), raNext: raNone}
}

// NewCompactionIterator returns an iterator whose block reads bypass
// cache insertion: a compaction touches every input block exactly once
// and must not evict the read path's working set.
func (r *Reader) NewCompactionIterator(tl *vclock.Timeline) *Iter {
	return &Iter{r: r, tl: tl, idx: r.index.NewIter(), noFill: true, raNext: raNone}
}

// raReset cancels any prefetch window and restarts the ramp — called
// on Seek (and on any non-sequential block load): a repositioned scan
// must not pay for, or be served stale bytes from, a window fetched
// for the old position.
func (it *Iter) raReset() {
	if it.raBuf != nil && !it.raView {
		putBlockBuf(it.raBuf)
	}
	it.raBuf = nil
	it.raView = false
	it.raNext = raNone
	it.raStreak = 0
	it.raWin = 1
}

// fetchBlock loads the data block at h, going through the readahead
// window when the access pattern is sequential and readahead is
// enabled, and through the block caches otherwise.
func (it *Iter) fetchBlock(h Handle) (*block.Reader, []byte, error) {
	if it.r.raMax > 1 && !it.noFill {
		sequential := h.Offset == it.raNext
		if sequential {
			it.raStreak++
		} else if it.raNext != raNone {
			it.raReset()
		}
		it.raNext = h.Offset + h.Size + blockTrailerLen

		// Hot-tier hits need no window; they still advance the
		// streak so a later miss prefetches at full ramp.
		if it.r.blocks != nil {
			if v, ok := it.r.blocks.Get(cache.Key{ID: it.r.cacheID, Off: h.Offset}); ok {
				return v.(*block.Reader), nil, nil
			}
		}
		if it.raBuf != nil && !it.windowContains(h) {
			// Exhausted (or, post-compression, ended mid-block):
			// recycle it so the sequential path below refetches a
			// fresh, larger window starting at h.
			it.raDropWindow()
		}
		if it.raBuf == nil && sequential && it.raStreak >= 1 {
			if it.raWin < it.r.raMax {
				it.raWin *= 2
				if it.raWin > it.r.raMax {
					it.raWin = it.r.raMax
				}
			}
			if err := it.fillWindow(h); err != nil {
				// Fall through to the per-block path, whose error
				// reporting feeds the engine's retry/heal machinery.
				it.raDropWindow()
			}
		}
		if it.raBuf != nil && it.windowContains(h) {
			br, err := it.serveFromWindow(h)
			if err != nil {
				return nil, nil, err
			}
			return br, nil, nil
		}
	}
	return it.r.dataBlock(it.tl, h, !it.noFill)
}

// windowContains reports whether the prefetched window wholly covers
// the block at h, trailer included.
func (it *Iter) windowContains(h Handle) bool {
	return h.Offset >= it.raOff &&
		h.Offset+h.Size+blockTrailerLen <= it.raOff+uint64(len(it.raBuf))
}

func (it *Iter) raDropWindow() {
	if it.raBuf != nil && !it.raView {
		putBlockBuf(it.raBuf)
	}
	it.raBuf = nil
	it.raView = false
}

// fillWindow fetches raw file bytes [h.Offset, h.Offset+window) in a
// single request: a zero-copy page-cache view when the file is
// resident, else one pooled ReadAt — the device charges one request
// latency for the whole window instead of one per block, which is the
// entire point of readahead on a cold scan.
func (it *Iter) fillWindow(h Handle) error {
	it.raDropWindow()
	start := h.Offset
	end := start + uint64(it.raWin)*uint64(it.r.blockSize)
	if min := start + h.Size + blockTrailerLen; end < min {
		end = min
	}
	if end > it.r.dataEnd {
		end = it.r.dataEnd
	}
	n := int(end - start)
	if n <= 0 {
		return nil
	}
	if vr, ok := it.r.f.(vfs.ViewReader); ok {
		buf, ok2, err := vr.ReadView(it.tl, n, int64(start))
		if err != nil {
			return err
		}
		if ok2 {
			it.raBuf, it.raOff, it.raView = buf, start, true
			return nil
		}
	}
	buf := getBlockBuf(n)
	if _, err := it.r.f.ReadAt(it.tl, buf, int64(start)); err != nil {
		putBlockBuf(buf)
		return err
	}
	it.raBuf, it.raOff, it.raView = buf, start, false
	return nil
}

// serveFromWindow carves the block at h out of the prefetched window:
// CRC-verified and decoded exactly like a device read, then copied
// into cache-owned memory and inserted in the shared tiers (the
// window buffer itself is transient).
func (it *Iter) serveFromWindow(h Handle) (*block.Reader, error) {
	b := it.raBuf[h.Offset-it.raOff:][:h.Size+blockTrailerLen]
	if err := verifyBlockTrailer(b[:h.Size], b[h.Size:], h.Offset); err != nil {
		return nil, err
	}
	payload, codec := b[:h.Size], b[h.Size]
	key := cache.Key{ID: it.r.cacheID, Off: h.Offset}
	var data []byte
	if codec == 0 {
		data = append([]byte(nil), payload...)
	} else {
		var err error
		data, err = it.r.decodePayload(it.tl, payload, codec, nil)
		if err != nil {
			return nil, err
		}
		if it.r.cblocks != nil {
			it.r.cblocks.Put(key, compressedBlock{codec: codec, data: append([]byte(nil), payload...)}, int64(len(payload)))
		}
	}
	br, err := block.NewReader(data, keys.CompareInternal)
	if err != nil {
		return nil, err
	}
	if it.r.blocks != nil {
		it.r.blocks.Put(key, br, int64(len(data)))
	}
	return br, nil
}

// loadDataBlock parses the block referenced by the current index
// entry.
func (it *Iter) loadDataBlock() bool {
	h, _, err := decodeHandle(it.idx.Value())
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	br, owned, err := it.fetchBlock(h)
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	if it.owned != nil {
		// The previous block is unreachable once its iterator is
		// replaced: keys were copied out and values die with it.
		putBlockBuf(it.owned)
	}
	it.owned = owned
	it.data = br.NewIter()
	return true
}

// First implements iterator.Iterator.
func (it *Iter) First() {
	it.idx.First()
	it.data = nil
	for it.idx.Valid() {
		if !it.loadDataBlock() {
			return
		}
		it.data.First()
		if it.data.Valid() {
			return
		}
		it.idx.Next()
	}
}

// Seek implements iterator.Iterator.
func (it *Iter) Seek(target []byte) {
	// A reposition invalidates the sequential-access hypothesis:
	// cancel any in-flight readahead window and restart the ramp.
	it.raReset()
	it.idx.Seek(target)
	it.data = nil
	seekInBlock := true
	for it.idx.Valid() {
		if !it.loadDataBlock() {
			return
		}
		if seekInBlock {
			// Only the first candidate block can contain keys
			// below target; later blocks start above it.
			it.data.Seek(target)
			seekInBlock = false
		} else {
			it.data.First()
		}
		if it.data.Valid() {
			return
		}
		it.idx.Next()
	}
	it.data = nil
}

// Next implements iterator.Iterator.
func (it *Iter) Next() {
	if it.data == nil || !it.data.Valid() {
		return
	}
	it.data.Next()
	for !it.data.Valid() {
		it.idx.Next()
		if !it.idx.Valid() {
			it.data = nil
			return
		}
		if !it.loadDataBlock() {
			return
		}
		it.data.First()
	}
}

// Valid implements iterator.Iterator.
func (it *Iter) Valid() bool { return it.data != nil && it.data.Valid() }

// Key implements iterator.Iterator.
func (it *Iter) Key() []byte { return it.data.Key() }

// Value implements iterator.Iterator.
func (it *Iter) Value() []byte { return it.data.Value() }

// Err implements iterator.Iterator.
func (it *Iter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.data != nil {
		if err := it.data.Err(); err != nil {
			return err
		}
	}
	return it.idx.Err()
}

var _ iterator.Iterator = (*Iter)(nil)
