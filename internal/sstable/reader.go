package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"noblsm/internal/block"
	"noblsm/internal/bloom"
	"noblsm/internal/cache"
	"noblsm/internal/iterator"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// Reader provides point lookups and iteration over one SSTable file.
type Reader struct {
	f       vfs.File
	cacheID uint64
	blocks  *cache.Cache // shared block cache; may be nil
	index   *block.Reader
	filter  []byte // whole-table bloom filter; nil if absent
	policy  *bloom.Filter
}

// Open validates the footer and loads the index and filter blocks.
// cacheID must be unique per file (the engine uses the file number);
// blocks may be nil to disable block caching.
func Open(tl *vclock.Timeline, f vfs.File, opts Options, cacheID uint64, blocks *cache.Cache) (*Reader, error) {
	opts = opts.withDefaults()
	size := f.Size()
	if size < footerLen {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(tl, footer, size-footerLen); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint64(footer[footerLen-8:]); got != magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	metaH, n, err := decodeHandle(footer)
	if err != nil {
		return nil, err
	}
	indexH, _, err := decodeHandle(footer[n:])
	if err != nil {
		return nil, err
	}

	r := &Reader{f: f, cacheID: cacheID, blocks: blocks, policy: bloom.New(opts.BloomBitsPerKey)}

	indexData, err := r.readBlockRaw(tl, indexH, false)
	if err != nil {
		return nil, err
	}
	r.index, err = block.NewReader(indexData, keys.CompareInternal)
	if err != nil {
		return nil, err
	}

	metaData, err := r.readBlockRaw(tl, metaH, false)
	if err != nil {
		return nil, err
	}
	meta, err := block.NewReader(metaData, keys.CompareUser)
	if err != nil {
		return nil, err
	}
	mit := meta.NewIter()
	for mit.First(); mit.Valid(); mit.Next() {
		if string(mit.Key()) == filterName {
			fh, _, err := decodeHandle(mit.Value())
			if err != nil {
				return nil, err
			}
			r.filter, err = r.readBlockRaw(tl, fh, false)
			if err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// Close releases the underlying file handle. The reader must not be
// used afterwards.
func (r *Reader) Close(tl *vclock.Timeline) error {
	return r.f.Close(tl)
}

// blockBufPool recycles block read buffers for compaction scans: a
// compaction reads every input block exactly once and discards it as
// soon as its iterator moves on, so without recycling these buffers
// were the second-largest allocation source in write benchmarks.
var blockBufPool sync.Pool

func getBlockBuf(n int) []byte {
	if v := blockBufPool.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putBlockBuf(b []byte) {
	b = b[:cap(b)]
	blockBufPool.Put(&b)
}

// ReleaseBlockBuf recycles a pool-drawn block buffer handed out by
// BlockSource.Next. Callers must guarantee no reference into the
// buffer survives the call.
func ReleaseBlockBuf(b []byte) { putBlockBuf(b) }

// readBlockRaw reads and CRC-verifies the block at h, bypassing the
// cache. pooled draws the buffer from blockBufPool; the caller then
// owns it and is responsible for recycling.
func (r *Reader) readBlockRaw(tl *vclock.Timeline, h Handle, pooled bool) ([]byte, error) {
	var buf []byte
	if pooled {
		buf = getBlockBuf(int(h.Size) + blockTrailerLen)
	} else {
		buf = make([]byte, h.Size+blockTrailerLen)
	}
	if _, err := r.f.ReadAt(tl, buf, int64(h.Offset)); err != nil {
		if errors.Is(err, io.EOF) {
			// A short read against a handle from the CRC-verified index
			// is real damage: the file lost its tail.
			return nil, fmt.Errorf("%w: truncated block at %d: %v", ErrCorrupt, h.Offset, err)
		}
		// Any other failure (e.g. an injected transient fault) is an I/O
		// error, not corruption — the caller's retry path handles it.
		return nil, err
	}
	if err := verifyBlockTrailer(buf[:h.Size], buf[h.Size:], h.Offset); err != nil {
		return nil, err
	}
	return buf[:h.Size], nil
}

// verifyBlockTrailer checks the CRC-32C trailer over contents plus the
// compression byte.
func verifyBlockTrailer(contents, trailer []byte, off uint64) error {
	crc := crc32.New(castagnoli)
	crc.Write(contents)
	crc.Write(trailer[:1])
	if crc.Sum32() != binary.LittleEndian.Uint32(trailer[1:]) {
		return fmt.Errorf("%w: block CRC mismatch at %d", ErrCorrupt, off)
	}
	return nil
}

// compactionBlock loads and CRC-verifies the data block at h for a
// compaction scan, preferring a zero-copy page-cache view when the
// file supports it (vfs.ViewReader and the block does not straddle an
// extent chunk). owned is the pool-drawn buffer backing the block on
// the copy path — the caller recycles it via ReleaseBlockBuf once the
// block is dead — and nil on the view path, whose backing memory stays
// valid while the table's file handle is open.
func (r *Reader) compactionBlock(tl *vclock.Timeline, h Handle) (*block.Reader, []byte, error) {
	if vr, ok := r.f.(vfs.ViewReader); ok {
		buf, ok, err := vr.ReadView(tl, int(h.Size)+blockTrailerLen, int64(h.Offset))
		if err != nil {
			return nil, nil, err
		}
		if ok {
			if err := verifyBlockTrailer(buf[:h.Size], buf[h.Size:], h.Offset); err != nil {
				return nil, nil, err
			}
			br, err := block.NewReader(buf[:h.Size:h.Size], keys.CompareInternal)
			return br, nil, err
		}
	}
	data, err := r.readBlockRaw(tl, h, true)
	if err != nil {
		return nil, nil, err
	}
	br, err := block.NewReader(data, keys.CompareInternal)
	if err != nil {
		ReleaseBlockBuf(data)
		return nil, nil, err
	}
	return br, data, nil
}

// BlockSource streams the data blocks of one table in key order for a
// compaction shard: a pull API the engine's read stage drives from its
// own goroutine, charging block loads to its own timeline. start and
// stop are internal keys bounding the shard ([start, stop), nil =
// open); the source over-approximates by at most one block on each
// side — the first emitted block is the one containing start, and the
// final one is the first whose index separator reaches stop, after
// which no further block can hold keys below stop.
type BlockSource struct {
	r       *Reader
	tl      *vclock.Timeline
	idx     *block.Iter
	start   []byte
	stop    []byte
	started bool
	done    bool
	err     error
}

// NewBlockSource returns a source over the data blocks overlapping
// [start, stop) in internal-key space.
func (r *Reader) NewBlockSource(tl *vclock.Timeline, start, stop []byte) *BlockSource {
	return &BlockSource{r: r, tl: tl, idx: r.index.NewIter(), start: start, stop: stop}
}

// Next returns the next data block, or ok=false at the end of the
// range (check Err). owned follows the compactionBlock contract.
func (s *BlockSource) Next() (br *block.Reader, owned []byte, ok bool) {
	if s.done || s.err != nil {
		return nil, nil, false
	}
	if !s.started {
		s.started = true
		if s.start != nil {
			s.idx.Seek(s.start)
		} else {
			s.idx.First()
		}
	} else {
		s.idx.Next()
	}
	if !s.idx.Valid() {
		s.done = true
		s.err = s.idx.Err()
		return nil, nil, false
	}
	h, _, err := decodeHandle(s.idx.Value())
	if err != nil {
		s.done, s.err = true, err
		return nil, nil, false
	}
	br, owned, err = s.r.compactionBlock(s.tl, h)
	if err != nil {
		s.done, s.err = true, err
		return nil, nil, false
	}
	if s.stop != nil && keys.CompareInternal(s.idx.Key(), s.stop) >= 0 {
		// The index separator is ≥ all keys in this block and < all
		// keys in later blocks: nothing past this block is below stop.
		s.done = true
	}
	return br, owned, true
}

// Err reports the first error the source hit.
func (s *BlockSource) Err() error { return s.err }

// dataBlock returns a parsed data block, via the shared cache when
// available. fillCache=false serves hits but never inserts — for
// compaction scans, which touch every block of their inputs exactly
// once and would otherwise flush the cache's working set (LevelDB's
// ReadOptions::fill_cache). In that mode the second return value is
// the privately owned, pool-drawn buffer backing the block (nil on a
// cache hit); the caller recycles it via putBlockBuf once the block is
// no longer referenced.
func (r *Reader) dataBlock(tl *vclock.Timeline, h Handle, fillCache bool) (*block.Reader, []byte, error) {
	key := cache.Key{ID: r.cacheID, Off: h.Offset}
	if r.blocks != nil {
		if v, ok := r.blocks.Get(key); ok {
			return v.(*block.Reader), nil, nil
		}
	}
	data, err := r.readBlockRaw(tl, h, !fillCache)
	if err != nil {
		return nil, nil, err
	}
	br, err := block.NewReader(data, keys.CompareInternal)
	if err != nil {
		return nil, nil, err
	}
	if r.blocks != nil && fillCache {
		r.blocks.Put(key, br, int64(len(data)))
		return br, nil, nil
	}
	if !fillCache {
		return br, data, nil
	}
	return br, nil, nil
}

// MayContain consults the table bloom filter for ukey. A nil filter
// always reports true.
func (r *Reader) MayContain(ukey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.policy.MayContain(r.filter, ukey)
}

// Get finds the first entry with internal key >= seek and returns its
// key and value. found is false if the table holds no such entry. The
// engine layers snapshot/user-key checks on top.
func (r *Reader) Get(tl *vclock.Timeline, seek []byte) (ikey, value []byte, found bool, err error) {
	it := r.NewIterator(tl)
	it.Seek(seek)
	if err := it.Err(); err != nil {
		return nil, nil, false, err
	}
	if !it.Valid() {
		return nil, nil, false, nil
	}
	return it.Key(), it.Value(), true, nil
}

// Iter is a two-level iterator: an index cursor selecting data blocks
// and a data cursor within the current block.
type Iter struct {
	r    *Reader
	tl   *vclock.Timeline
	idx  *block.Iter
	data *block.Iter
	err  error
	// noFill skips block-cache insertion (compaction scans); owned is
	// the pool-drawn buffer backing the current block in that mode,
	// recycled when the iterator moves to the next block.
	noFill bool
	owned  []byte
}

// NewIterator returns an iterator over the whole table, charging block
// reads to tl.
func (r *Reader) NewIterator(tl *vclock.Timeline) *Iter {
	return &Iter{r: r, tl: tl, idx: r.index.NewIter()}
}

// NewCompactionIterator returns an iterator whose block reads bypass
// cache insertion: a compaction touches every input block exactly once
// and must not evict the read path's working set.
func (r *Reader) NewCompactionIterator(tl *vclock.Timeline) *Iter {
	return &Iter{r: r, tl: tl, idx: r.index.NewIter(), noFill: true}
}

// loadDataBlock parses the block referenced by the current index
// entry.
func (it *Iter) loadDataBlock() bool {
	h, _, err := decodeHandle(it.idx.Value())
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	br, owned, err := it.r.dataBlock(it.tl, h, !it.noFill)
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	if it.owned != nil {
		// The previous block is unreachable once its iterator is
		// replaced: keys were copied out and values die with it.
		putBlockBuf(it.owned)
	}
	it.owned = owned
	it.data = br.NewIter()
	return true
}

// First implements iterator.Iterator.
func (it *Iter) First() {
	it.idx.First()
	it.data = nil
	for it.idx.Valid() {
		if !it.loadDataBlock() {
			return
		}
		it.data.First()
		if it.data.Valid() {
			return
		}
		it.idx.Next()
	}
}

// Seek implements iterator.Iterator.
func (it *Iter) Seek(target []byte) {
	it.idx.Seek(target)
	it.data = nil
	seekInBlock := true
	for it.idx.Valid() {
		if !it.loadDataBlock() {
			return
		}
		if seekInBlock {
			// Only the first candidate block can contain keys
			// below target; later blocks start above it.
			it.data.Seek(target)
			seekInBlock = false
		} else {
			it.data.First()
		}
		if it.data.Valid() {
			return
		}
		it.idx.Next()
	}
	it.data = nil
}

// Next implements iterator.Iterator.
func (it *Iter) Next() {
	if it.data == nil || !it.data.Valid() {
		return
	}
	it.data.Next()
	for !it.data.Valid() {
		it.idx.Next()
		if !it.idx.Valid() {
			it.data = nil
			return
		}
		if !it.loadDataBlock() {
			return
		}
		it.data.First()
	}
}

// Valid implements iterator.Iterator.
func (it *Iter) Valid() bool { return it.data != nil && it.data.Valid() }

// Key implements iterator.Iterator.
func (it *Iter) Key() []byte { return it.data.Key() }

// Value implements iterator.Iterator.
func (it *Iter) Value() []byte { return it.data.Value() }

// Err implements iterator.Iterator.
func (it *Iter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.data != nil {
		if err := it.data.Err(); err != nil {
			return err
		}
	}
	return it.idx.Err()
}

var _ iterator.Iterator = (*Iter)(nil)
