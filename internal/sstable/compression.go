package sstable

import (
	"fmt"

	"noblsm/internal/compress"
	"noblsm/internal/vclock"
)

// Compression selects the per-block codec for newly built blocks. The
// chosen codec is recorded per block in the trailer's first byte (the
// format slot LevelDB uses for the same purpose), so a table may mix
// compressed and raw blocks and readers need no table-level state:
// incompressible blocks are stored raw under codec tag 0, and every
// pre-compression table reads back unchanged.
type Compression int

const (
	// NoCompression stores blocks raw (codec tag 0) — the default,
	// and the only codec the paper-figure variants use.
	NoCompression Compression = iota
	// FastCompression encodes with compress.LevelFast (codec tag 1):
	// the hot-level choice, cheap enough for flushes.
	FastCompression
	// MaxCompression encodes with compress.LevelMax (codec tag 2):
	// denser and slower, meant for cold bottom levels whose blocks
	// are written once per major compaction and read many times.
	MaxCompression
)

func (c Compression) String() string {
	switch c {
	case NoCompression:
		return "none"
	case FastCompression:
		return "fast"
	case MaxCompression:
		return "max"
	}
	return fmt.Sprintf("Compression(%d)", int(c))
}

// Measured single-core throughput of internal/compress on the
// benchmark corpus (see its Benchmark* functions; run on the dev
// container's Xeon). The virtual-time cost model charges codec work
// from these constants: per-byte costs divide by Options.CodecCostDiv
// (the harness data-scale) exactly like device bytes do, while
// per-request overheads stay unscaled — see DESIGN.md §10.
const (
	encodeFastBytesPerSec = 350 << 20
	encodeMaxBytesPerSec  = 120 << 20
	decodeBytesPerSec     = 1200 << 20
)

// codecCost converts n bytes at a measured bandwidth into scaled
// virtual CPU time.
func codecCost(n int, bytesPerSec int64, div int64) vclock.Duration {
	if n <= 0 {
		return 0
	}
	if div < 1 {
		div = 1
	}
	return vclock.Duration(int64(n) * int64(vclock.Second) / (bytesPerSec * div))
}

// BuildScratch holds buffers a sequence of Builders reuses: one
// compaction (or flush) builds many tables back to back on one
// goroutine, and per-table allocations of the filter and the encoder
// destination dominated the builder's allocation profile. Not safe
// for concurrent use — each subcompaction shard owns its own.
type BuildScratch struct {
	filter []byte
	enc    []byte
}

// encodeBlock compresses contents per the builder's codec, charging
// the encode CPU, and reports the payload to store plus its codec
// tag: the original bytes under tag 0 whenever compression is off or
// does not pay for itself.
func (b *Builder) encodeBlock(tl *vclock.Timeline, contents []byte) ([]byte, byte) {
	var lv compress.Level
	var bw int64
	switch b.opts.Compression {
	case FastCompression:
		lv, bw = compress.LevelFast, encodeFastBytesPerSec
	case MaxCompression:
		lv, bw = compress.LevelMax, encodeMaxBytesPerSec
	default:
		return contents, 0
	}
	var dst []byte
	if b.opts.Scratch != nil {
		dst = b.opts.Scratch.enc
	}
	enc := compress.Encode(dst, contents, lv)
	if b.opts.Scratch != nil {
		b.opts.Scratch.enc = enc
	}
	tl.Advance(codecCost(len(contents), bw, b.opts.CodecCostDiv))
	if !compress.Compressible(enc, len(contents)) {
		return contents, 0
	}
	return enc, byte(b.opts.Compression)
}

// decodePayload expands a CRC-verified block payload per its codec
// tag, charging decode CPU. dst is an optional reuse buffer for the
// decoded bytes; tag 0 returns payload itself.
func (r *Reader) decodePayload(tl *vclock.Timeline, payload []byte, codec byte, dst []byte) ([]byte, error) {
	switch Compression(codec) {
	case NoCompression:
		return payload, nil
	case FastCompression, MaxCompression:
		n, err := compress.DecodedLen(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		dec, err := compress.Decode(dst, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		tl.Advance(codecCost(n, decodeBytesPerSec, r.codecDiv))
		return dec, nil
	}
	return nil, fmt.Errorf("%w: unknown block codec %d", ErrCorrupt, codec)
}
