package sstable

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"noblsm/internal/keys"
	"noblsm/internal/vclock"
)

// Varied-length user keys exercise SeparatorInternal/SuccessorInternal
// shortening in the index block.
func TestTableVariedKeys(t *testing.T) {
	tl := vclock.NewTimeline(0)
	rnd := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		ukset := map[string]bool{}
		n := rnd.Intn(300) + 2
		for i := 0; i < n; i++ {
			l := rnd.Intn(8) + 1
			b := make([]byte, l)
			for j := range b {
				b[j] = byte(rnd.Intn(5)) + 'a'
			}
			ukset[string(b)] = true
		}
		var es []entry
		seq := keys.SeqNum(1)
		for uk := range ukset {
			nv := rnd.Intn(3) + 1
			for j := 0; j < nv; j++ {
				es = append(es, entry{keys.MakeInternalKey(nil, []byte(uk), seq, keys.KindValue), fmt.Sprintf("v%d", seq)})
				seq++
			}
		}
		sort.Slice(es, func(a, b int) bool { return keys.CompareInternal(es[a].ik, es[b].ik) < 0 })
		f := &memFile{}
		opts := Options{BlockSize: 64, RestartInterval: 2, BloomBitsPerKey: 10}
		b := NewBuilder(f, opts)
		for _, e := range es {
			if err := b.Add(tl, e.ik, []byte(e.v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Finish(tl); err != nil {
			t.Fatal(err)
		}
		r, err := Open(tl, f, opts, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		it := r.NewIterator(tl)
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if keys.CompareInternal(it.Key(), es[i].ik) != 0 || string(it.Value()) != es[i].v {
				t.Fatalf("trial %d idx %d: got %s want %s", trial, i, keys.String(it.Key()), keys.String(es[i].ik))
			}
			i++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if i != len(es) {
			t.Fatalf("trial %d: scan %d of %d", trial, i, len(es))
		}
		for probe := 0; probe < 500; probe++ {
			l := rnd.Intn(9) + 1
			ub := make([]byte, l)
			for j := range ub {
				ub[j] = byte(rnd.Intn(6)) + 'a' - 1
			}
			s := keys.SeqNum(rnd.Intn(int(seq) + 2))
			target := keys.MakeInternalKey(nil, ub, s, keys.KindSeek)
			want := sort.Search(len(es), func(j int) bool { return keys.CompareInternal(es[j].ik, target) >= 0 })
			it.Seek(target)
			if err := it.Err(); err != nil {
				t.Fatalf("trial %d seek err %v", trial, err)
			}
			if want == len(es) {
				if it.Valid() {
					t.Fatalf("trial %d: seek %s: want invalid got %s", trial, keys.String(target), keys.String(it.Key()))
				}
				continue
			}
			if !it.Valid() || keys.CompareInternal(it.Key(), es[want].ik) != 0 || string(it.Value()) != es[want].v {
				got := "invalid"
				if it.Valid() {
					got = keys.String(it.Key())
				}
				t.Fatalf("trial %d: seek %s: want %s got %s", trial, keys.String(target), keys.String(es[want].ik), got)
			}
		}
	}
}
