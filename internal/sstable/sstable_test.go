package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"noblsm/internal/cache"
	"noblsm/internal/ext4"
	"noblsm/internal/keys"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

func newFS() (*ext4.FS, *vclock.Timeline) {
	return ext4.New(ext4.DefaultConfig(), ssd.New(ssd.PM883())), vclock.NewTimeline(0)
}

func ik(k string, seq keys.SeqNum) []byte {
	return keys.MakeInternalKey(nil, []byte(k), seq, keys.KindValue)
}

func buildTable(t *testing.T, fs *ext4.FS, tl *vclock.Timeline, name string, opts Options, n int) vfs.File {
	t.Helper()
	f, err := fs.Create(tl, name)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f, opts)
	for i := 0; i < n; i++ {
		if err := b.Add(tl, ik(fmt.Sprintf("key%06d", i), keys.SeqNum(i+1)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(tl); err != nil {
		t.Fatal(err)
	}
	if b.Entries() != n {
		t.Fatalf("builder entries %d, want %d", b.Entries(), n)
	}
	return f
}

func TestBuildAndScan(t *testing.T) {
	fs, tl := newFS()
	const n = 3000 // spans many data blocks at 4 KiB
	f := buildTable(t, fs, tl, "000007.ldb", DefaultOptions(), n)
	r, err := Open(tl, f, DefaultOptions(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIterator(tl)
	i := 0
	for it.First(); it.Valid(); it.Next() {
		wantK := fmt.Sprintf("key%06d", i)
		if string(keys.UserKey(it.Key())) != wantK || string(it.Value()) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("entry %d: %s=%q", i, keys.String(it.Key()), it.Value())
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d entries, want %d", i, n)
	}
}

func TestSeekAcrossBlocks(t *testing.T) {
	fs, tl := newFS()
	const n = 2000
	f := buildTable(t, fs, tl, "t.ldb", DefaultOptions(), n)
	r, err := Open(tl, f, DefaultOptions(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIterator(tl)
	rnd := rand.New(rand.NewSource(5))
	for probe := 0; probe < 300; probe++ {
		i := rnd.Intn(n)
		target := keys.MakeInternalKey(nil, []byte(fmt.Sprintf("key%06d", i)), keys.MaxSeqNum, keys.KindSeek)
		it.Seek(target)
		if !it.Valid() || string(keys.UserKey(it.Key())) != fmt.Sprintf("key%06d", i) {
			t.Fatalf("seek to key%06d failed", i)
		}
	}
	// Seek before first and past last.
	it.Seek(ik("a", keys.MaxSeqNum))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key000000" {
		t.Fatal("seek before first broken")
	}
	it.Seek(ik("z", keys.MaxSeqNum))
	if it.Valid() {
		t.Fatal("seek past last is valid")
	}
}

func TestGet(t *testing.T) {
	fs, tl := newFS()
	f := buildTable(t, fs, tl, "t.ldb", DefaultOptions(), 500)
	r, err := Open(tl, f, DefaultOptions(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	seek := keys.MakeInternalKey(nil, []byte("key000123"), keys.MaxSeqNum, keys.KindSeek)
	gk, gv, found, err := r.Get(tl, seek)
	if err != nil || !found {
		t.Fatalf("Get: %v, found=%v", err, found)
	}
	if string(keys.UserKey(gk)) != "key000123" || string(gv) != "value-123" {
		t.Fatalf("Get = %s:%q", keys.String(gk), gv)
	}
}

func TestBloomFilterSkipsAbsentKeys(t *testing.T) {
	fs, tl := newFS()
	f := buildTable(t, fs, tl, "t.ldb", DefaultOptions(), 1000)
	r, err := Open(tl, f, DefaultOptions(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("key%06d", i))) {
			t.Fatalf("false negative for key%06d", i)
		}
	}
	miss := 0
	for i := 0; i < 1000; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("absent%06d", i))) {
			miss++
		}
	}
	if miss < 900 {
		t.Fatalf("bloom filter rejected only %d/1000 absent keys", miss)
	}
}

func TestNoBloomOption(t *testing.T) {
	fs, tl := newFS()
	opts := DefaultOptions()
	opts.BloomBitsPerKey = 0
	f := buildTable(t, fs, tl, "t.ldb", opts, 100)
	r, err := Open(tl, f, opts, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.MayContain([]byte("anything")) {
		t.Fatal("filterless table rejected a key")
	}
}

func TestBlockCacheHits(t *testing.T) {
	fs, tl := newFS()
	f := buildTable(t, fs, tl, "t.ldb", DefaultOptions(), 2000)
	bc := cache.New(8 << 20)
	r, err := Open(tl, f, DefaultOptions(), 42, bc)
	if err != nil {
		t.Fatal(err)
	}
	seek := keys.MakeInternalKey(nil, []byte("key000777"), keys.MaxSeqNum, keys.KindSeek)
	r.Get(tl, seek)
	_, misses1 := bc.Stats()
	r.Get(tl, seek)
	hits2, misses2 := bc.Stats()
	if misses2 != misses1 {
		t.Fatalf("second Get missed the cache (%d -> %d misses)", misses1, misses2)
	}
	if hits2 == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestSmallestLargest(t *testing.T) {
	fs, tl := newFS()
	f, _ := fs.Create(tl, "t.ldb")
	b := NewBuilder(f, DefaultOptions())
	b.Add(tl, ik("aaa", 9), []byte("1"))
	b.Add(tl, ik("mmm", 8), []byte("2"))
	b.Add(tl, ik("zzz", 7), []byte("3"))
	if err := b.Finish(tl); err != nil {
		t.Fatal(err)
	}
	if string(keys.UserKey(b.Smallest())) != "aaa" || string(keys.UserKey(b.Largest())) != "zzz" {
		t.Fatalf("bounds: %s .. %s", keys.String(b.Smallest()), keys.String(b.Largest()))
	}
	if b.FileSize() != f.Size() {
		t.Fatal("FileSize disagrees with file")
	}
}

func TestOpenRejectsTruncatedTable(t *testing.T) {
	fs, tl := newFS()
	f := buildTable(t, fs, tl, "t.ldb", DefaultOptions(), 100)
	full, _ := fs.ReadFile(tl, "t.ldb")
	// A table truncated mid-way (the post-crash state of an unsynced,
	// uncommitted SSTable) must fail to open.
	fs.WriteFile(tl, "torn.ldb", full[:len(full)/2])
	tf, _ := fs.Open(tl, "torn.ldb")
	if _, err := Open(tl, tf, DefaultOptions(), 2, nil); err == nil {
		t.Fatal("torn table opened successfully")
	}
	_ = f
}

func TestOpenRejectsBitRot(t *testing.T) {
	fs, tl := newFS()
	buildTable(t, fs, tl, "t.ldb", DefaultOptions(), 100)
	img, _ := fs.ReadFile(tl, "t.ldb")
	rot := append([]byte(nil), img...)
	rot[10] ^= 0x40 // flip a bit inside the first data block
	fs.WriteFile(tl, "rot.ldb", rot)
	rf, _ := fs.Open(tl, "rot.ldb")
	r, err := Open(tl, rf, DefaultOptions(), 3, nil)
	if err != nil {
		return // index/footer read already detected it
	}
	it := r.NewIterator(tl)
	for it.First(); it.Valid(); it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("bit rot in a data block went undetected by CRC")
	}
}

func TestEmptyTable(t *testing.T) {
	fs, tl := newFS()
	f, _ := fs.Create(tl, "empty.ldb")
	b := NewBuilder(f, DefaultOptions())
	if err := b.Finish(tl); err != nil {
		t.Fatal(err)
	}
	r, err := Open(tl, f, DefaultOptions(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIterator(tl)
	it.First()
	if it.Valid() {
		t.Fatal("empty table iterates")
	}
}

func TestLargeValues(t *testing.T) {
	fs, tl := newFS()
	f, _ := fs.Create(tl, "big.ldb")
	b := NewBuilder(f, DefaultOptions())
	big := bytes.Repeat([]byte("x"), 64*1024) // larger than BlockSize
	for i := 0; i < 10; i++ {
		b.Add(tl, ik(fmt.Sprintf("k%02d", i), keys.SeqNum(i+1)), big)
	}
	if err := b.Finish(tl); err != nil {
		t.Fatal(err)
	}
	r, err := Open(tl, f, DefaultOptions(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIterator(tl)
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Value(), big) {
			t.Fatal("large value corrupted")
		}
		n++
	}
	if n != 10 {
		t.Fatalf("scanned %d large entries", n)
	}
}

func TestTombstonesSurviveRoundTrip(t *testing.T) {
	fs, tl := newFS()
	f, _ := fs.Create(tl, "t.ldb")
	b := NewBuilder(f, DefaultOptions())
	b.Add(tl, keys.MakeInternalKey(nil, []byte("dead"), 5, keys.KindDelete), nil)
	b.Add(tl, keys.MakeInternalKey(nil, []byte("live"), 4, keys.KindValue), []byte("v"))
	if err := b.Finish(tl); err != nil {
		t.Fatal(err)
	}
	r, _ := Open(tl, f, DefaultOptions(), 1, nil)
	it := r.NewIterator(tl)
	it.First()
	_, _, kind, _ := keys.ParseInternalKey(it.Key())
	if kind != keys.KindDelete {
		t.Fatalf("first entry kind %v, want tombstone", kind)
	}
}

func BenchmarkTableGet(b *testing.B) {
	fs := ext4.New(ext4.DefaultConfig(), ssd.New(ssd.PM883()))
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "bench.ldb")
	bld := NewBuilder(f, DefaultOptions())
	for i := 0; i < 10000; i++ {
		bld.Add(tl, ik(fmt.Sprintf("key%08d", i), keys.SeqNum(i+1)), []byte("value"))
	}
	bld.Finish(tl)
	bc := cache.New(64 << 20)
	r, err := Open(tl, f, DefaultOptions(), 1, bc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seek := keys.MakeInternalKey(nil, []byte(fmt.Sprintf("key%08d", i%10000)), keys.MaxSeqNum, keys.KindSeek)
		r.Get(tl, seek)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any sorted set of unique keys with arbitrary values
	// survives a build → open → scan round trip exactly, across block
	// sizes that force single- and multi-block tables.
	fs, tl := newFS()
	fileNum := 0
	f := func(raw map[string]string, blockSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var ks []string
		for k := range raw {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		opts := DefaultOptions()
		opts.BlockSize = []int{256, 1024, 4096}[int(blockSel)%3]
		fileNum++
		name := fmt.Sprintf("prop-%05d.ldb", fileNum)
		fh, err := fs.Create(tl, name)
		if err != nil {
			return false
		}
		b := NewBuilder(fh, opts)
		for i, k := range ks {
			if err := b.Add(tl, ik(k, keys.SeqNum(i+1)), []byte(raw[k])); err != nil {
				return false
			}
		}
		if err := b.Finish(tl); err != nil {
			return false
		}
		r, err := Open(tl, fh, opts, uint64(fileNum), nil)
		if err != nil {
			return false
		}
		it := r.NewIterator(tl)
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if string(keys.UserKey(it.Key())) != ks[i] || string(it.Value()) != raw[ks[i]] {
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(ks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
