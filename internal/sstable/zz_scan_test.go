package sstable

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"noblsm/internal/keys"
	"noblsm/internal/vclock"
)

type memFile struct{ b []byte }

func (m *memFile) Append(tl *vclock.Timeline, p []byte) error { m.b = append(m.b, p...); return nil }
func (m *memFile) Sync(tl *vclock.Timeline) error             { return nil }
func (m *memFile) Close(tl *vclock.Timeline) error            { return nil }
func (m *memFile) Size() int64                                { return int64(len(m.b)) }
func (m *memFile) Ino() int64                                 { return 1 }
func (m *memFile) ReadAt(tl *vclock.Timeline, p []byte, off int64) (int, error) {
	return copy(p, m.b[off:]), nil
}

type entry struct {
	ik []byte
	v  string
}

func TestTableSeekExhaustive(t *testing.T) {
	tl := vclock.NewTimeline(0)
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		// Multiple versions per user key, so user keys span block boundaries.
		var es []entry
		seq := keys.SeqNum(1)
		nk := rnd.Intn(200) + 1
		for i := 0; i < nk; i++ {
			uk := []byte(fmt.Sprintf("key%05d", i*3))
			nv := rnd.Intn(5) + 1
			for j := 0; j < nv; j++ {
				kind := keys.KindValue
				if rnd.Intn(4) == 0 {
					kind = keys.KindDelete
				}
				es = append(es, entry{keys.MakeInternalKey(nil, uk, seq, kind), fmt.Sprintf("v%d.%d", i, j)})
				seq++
			}
		}
		sort.Slice(es, func(a, b int) bool { return keys.CompareInternal(es[a].ik, es[b].ik) < 0 })
		f := &memFile{}
		opts := Options{BlockSize: 128, RestartInterval: 4, BloomBitsPerKey: 10}
		b := NewBuilder(f, opts)
		for _, e := range es {
			if err := b.Add(tl, e.ik, []byte(e.v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Finish(tl); err != nil {
			t.Fatal(err)
		}
		r, err := Open(tl, f, opts, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Full scan
		it := r.NewIterator(tl)
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if keys.CompareInternal(it.Key(), es[i].ik) != 0 || string(it.Value()) != es[i].v {
				t.Fatalf("trial %d scan idx %d: got %s=%q want %s=%q", trial, i, keys.String(it.Key()), it.Value(), keys.String(es[i].ik), es[i].v)
			}
			i++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if i != len(es) {
			t.Fatalf("trial %d: scan saw %d of %d", trial, i, len(es))
		}
		// Seek exhaustively: every user key (incl. absent) at random snapshot seqs
		for probe := 0; probe < 300; probe++ {
			uk := []byte(fmt.Sprintf("key%05d", rnd.Intn(nk*3+4)))
			s := keys.SeqNum(rnd.Intn(int(seq) + 2))
			target := keys.MakeInternalKey(nil, uk, s, keys.KindSeek)
			want := sort.Search(len(es), func(j int) bool { return keys.CompareInternal(es[j].ik, target) >= 0 })
			it.Seek(target)
			if err := it.Err(); err != nil {
				t.Fatalf("trial %d: seek err %v", trial, err)
			}
			if want == len(es) {
				if it.Valid() {
					t.Fatalf("trial %d: seek %s: want invalid got %s", trial, keys.String(target), keys.String(it.Key()))
				}
				continue
			}
			if !it.Valid() || keys.CompareInternal(it.Key(), es[want].ik) != 0 {
				got := "invalid"
				if it.Valid() {
					got = keys.String(it.Key())
				}
				t.Fatalf("trial %d: seek %s: want %s got %s", trial, keys.String(target), keys.String(es[want].ik), got)
			}
			if string(it.Value()) != es[want].v {
				t.Fatalf("trial %d: seek %s: wrong value", trial, keys.String(target))
			}
			// continue scanning a few
			for step := 1; step <= 3; step++ {
				it.Next()
				if want+step == len(es) {
					if it.Valid() {
						t.Fatalf("trial %d: next past end valid", trial)
					}
					break
				}
				if !it.Valid() || keys.CompareInternal(it.Key(), es[want+step].ik) != 0 {
					t.Fatalf("trial %d: next step %d after seek %s wrong", trial, step, keys.String(target))
				}
			}
		}
		// Bloom: no false negatives
		for i := 0; i < nk; i++ {
			if !r.MayContain([]byte(fmt.Sprintf("key%05d", i*3))) {
				t.Fatalf("trial %d: bloom false negative", trial)
			}
		}
		// Get
		for probe := 0; probe < 100; probe++ {
			uk := []byte(fmt.Sprintf("key%05d", rnd.Intn(nk*3+4)))
			target := keys.MakeInternalKey(nil, uk, keys.MaxSeqNum, keys.KindSeek)
			want := sort.Search(len(es), func(j int) bool { return keys.CompareInternal(es[j].ik, target) >= 0 })
			ik, v, found, err := r.Get(tl, target)
			if err != nil {
				t.Fatal(err)
			}
			if (want < len(es)) != found {
				t.Fatalf("trial %d: get %q found=%v want %v", trial, uk, found, want < len(es))
			}
			if found && (keys.CompareInternal(ik, es[want].ik) != 0 || string(v) != es[want].v) {
				t.Fatalf("trial %d: get %q wrong entry", trial, uk)
			}
		}
	}
}

// Truncation / bit-flip corruption must never yield silently wrong data.
func TestTableCorruptionDetected(t *testing.T) {
	tl := vclock.NewTimeline(0)
	f := &memFile{}
	opts := Options{BlockSize: 256, RestartInterval: 4, BloomBitsPerKey: 10}
	b := NewBuilder(f, opts)
	var es []entry
	for i := 0; i < 500; i++ {
		ik := keys.MakeInternalKey(nil, []byte(fmt.Sprintf("key%05d", i)), keys.SeqNum(i+1), keys.KindValue)
		es = append(es, entry{ik, fmt.Sprintf("val%d", i)})
		b.Add(tl, ik, []byte(fmt.Sprintf("val%d", i)))
	}
	b.Finish(tl)
	good := append([]byte(nil), f.b...)
	for pos := 0; pos < len(good); pos += 101 {
		img := append([]byte(nil), good...)
		img[pos] ^= 0xff
		r, err := Open(tl, &memFile{b: img}, opts, 1, nil)
		if err != nil {
			continue // detected at open
		}
		it := r.NewIterator(tl)
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if i >= len(es) {
				break
			}
			if keys.CompareInternal(it.Key(), es[i].ik) != 0 || string(it.Value()) != es[i].v {
				// wrong data must be accompanied by an error
				if it.Err() == nil {
					t.Fatalf("flip at %d: silently wrong entry %d: got %s", pos, i, keys.String(it.Key()))
				}
				break
			}
			i++
		}
		if it.Err() == nil && i != len(es) {
			t.Errorf("flip at %d: clean iteration but only %d/%d entries", pos, i, len(es))
		}
	}
}
