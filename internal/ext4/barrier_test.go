package ext4

import (
	"testing"

	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

func TestSyncBarrierStallsOtherThreads(t *testing.T) {
	fs := newTestFS()
	syncer := vclock.NewTimeline(0)

	f, _ := fs.Create(syncer, "big")
	f.Append(syncer, make([]byte, 8<<20))
	f.Sync(syncer)

	// A bystander operation issued inside the locked commit section
	// (just before the barrier completes) stalls until it does; one
	// issued before the section began does not.
	early := vclock.NewTimeline(0)
	fs.Exists(early, "big")
	if early.Now() >= syncer.Now() {
		t.Fatalf("pre-window bystander stalled to %v", early.Now())
	}
	late := vclock.NewTimeline(syncer.Now().Add(-vclock.Microsecond))
	fs.WriteFile(late, "tiny", []byte("x"))
	if late.Now() < syncer.Now() {
		t.Fatalf("in-window bystander (%v) not stalled behind barrier (%v)", late.Now(), syncer.Now())
	}
	if st := fs.Stats(); st.BarrierStall <= 0 {
		t.Fatalf("no barrier stall recorded: %+v", st)
	}
}

func TestAsyncCommitDoesNotStallOthers(t *testing.T) {
	fs := newTestFS()
	writer := vclock.NewTimeline(0)
	fs.WriteFile(writer, "data", make([]byte, 8<<20))
	// Cross a commit interval: the async commit runs on the writeback
	// timeline.
	writer.Advance(5 * vclock.Second)
	bystander := vclock.NewTimeline(writer.Now())
	before := bystander.Now()
	fs.WriteFile(bystander, "tiny", []byte("x"))
	// The bystander pays only page-cache costs — microseconds, not
	// the multi-millisecond device writeback of the 8 MB commit.
	if stall := bystander.Now().Sub(before); stall > vclock.Millisecond {
		t.Fatalf("async commit stalled a bystander for %v", stall)
	}
	if st := fs.Stats(); st.AsyncCommits != 1 {
		t.Fatalf("async commit did not run: %+v", st)
	}
}

func TestSyncCommitsRespectJournalOrdering(t *testing.T) {
	// A sync commit cannot complete before previously scheduled
	// asynchronous writeback: transactions commit serially.
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "bulk", make([]byte, 64<<20))
	tl.Advance(5 * vclock.Second)
	fs.Exists(tl, "bulk") // kick the async commit (wb timeline busy)
	wbBusyUntil := fs.wb.Now()

	f, _ := fs.Create(tl, "synced")
	f.Append(tl, []byte("x"))
	f.Sync(tl)
	if tl.Now() < wbBusyUntil {
		t.Fatalf("fsync (%v) completed before prior commit (%v)", tl.Now(), wbBusyUntil)
	}
}

func TestCommitIntervalConfigurable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommitInterval = 100 * vclock.Millisecond
	fs := New(cfg, ssd.New(ssd.PM883()))
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "f", []byte("x"))
	tl.Advance(350 * vclock.Millisecond)
	fs.Exists(tl, "f")
	if got := fs.DurableSize("f"); got != 1 {
		t.Fatalf("file not durable after 3 intervals (durable size %d)", got)
	}
	if fs.LastCommitAt() == 0 {
		t.Fatal("commit clock did not advance")
	}
}

func TestZeroCommitIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{}, ssd.New(ssd.PM883()))
}
