package ext4

import "noblsm/internal/vclock"

// Crash simulates a sudden power cut at virtual time at (the paper
// uses `halt -f -p -n`, which powers off without flushing dirty
// blocks) followed by remounting the filesystem with journal replay:
//
//   - the page cache and the running (uncommitted) transaction are
//     lost: uncommitted creations vanish, uncommitted removals and
//     renames roll back, and every file's contents revert to the
//     length recorded by the last committed transaction holding its
//     inode;
//   - the kernel-space Pending and Committed tables are volatile and
//     come back empty;
//   - all open handles are severed.
//
// Device counters and the device queue position are preserved so an
// experiment can account totals across the cut.
func (fs *FS) Crash(at vclock.Time) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// The flusher and kjournald run on wall time, not on application
	// activity: everything scheduled before the power cut happened.
	fs.flushLocked(at)
	fs.catchUp(at)

	names := make(map[string]*inode, len(fs.durableNames))
	inodes := make(map[int64]*inode, len(fs.durableNames))
	for name, ino := range fs.durableNames {
		in := fs.inodes[ino]
		if in == nil || in.durableSize < 0 {
			// A durable name must reference a committed inode by
			// construction; guard anyway.
			continue
		}
		if _, seen := inodes[ino]; !seen {
			in.data.Truncate(in.durableSize)
			in.persisted = in.durableSize
			in.resident = false
			in.pagedIn = nil
			in.pagesIn = 0
			in.nlink = 0
			in.inRunning = false
			in.queued = false
			inodes[ino] = in
		}
		// nlink is recounted from the durable namespace: an inode with
		// several committed hard links resurrects with all of them.
		in.nlink++
		names[name] = in
	}
	fs.names = names
	fs.inodes = inodes
	fs.running = newTxn()
	fs.dirtyBytes = 0
	fs.flushQueue = nil
	fs.pending = make(map[int64]bool)
	fs.committed = make(map[int64]bool)
	fs.gen++
	if at > fs.lastCommit {
		fs.lastCommit = at
	}
	fs.wb.WaitUntil(at)
	fs.flusher.WaitUntil(at)
}

// DurableFileCount reports the number of files that would survive a
// crash right now (for tests).
func (fs *FS) DurableFileCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.durableNames)
}

// DurableSize reports the crash-surviving length of name, or -1 if the
// file would not exist after a crash (for tests).
func (fs *FS) DurableSize(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.durableNames[name]
	if !ok {
		return -1
	}
	in := fs.inodes[ino]
	if in == nil {
		return -1
	}
	return in.durableSize
}

// DebugState reports internal progress markers (tests only).
func (fs *FS) DebugState(name string) (flusherNow, wbNow vclock.Time, queueLen int, persisted, size, durable int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	flusherNow, wbNow, queueLen = fs.flusher.Now(), fs.wb.Now(), len(fs.flushQueue)
	if in, ok := fs.names[name]; ok {
		persisted, size, durable = in.persisted, in.data.Len(), in.durableSize
	}
	return
}
