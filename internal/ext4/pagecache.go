package ext4

// Page-granular residency accounting.
//
// A freshly written file is wholly page-cache resident (writes go
// through the cache), which the inode records with the single
// `resident` flag — the fast path that every steady-state read takes.
// After a crash the cache is empty, and real kernels repopulate it a
// page at a time as reads fault data back in. Modeling that refill at
// whole-file granularity (the original behavior: the first 48-byte
// footer read made a 64 MB table "hot") made post-crash reads almost
// free and any cold-read benchmark meaningless. The bitset below
// tracks residency per 4 KiB page instead, so each first touch of a
// block pays the device and each re-read is a memcpy — while files
// that never crash keep the flag fast path and their exact virtual
// timings (figure runs never read non-resident data).
const pageBytes = 4096

// pages reports how many pages hold a file of n bytes.
func pages(n int64) int64 { return (n + pageBytes - 1) / pageBytes }

// rangeResident reports whether every page overlapping [off, off+n)
// is in the page cache. n <= 0 is trivially resident.
func (in *inode) rangeResident(off, n int64) bool {
	if in.resident {
		return true
	}
	if n <= 0 {
		return true
	}
	for pg := off / pageBytes; pg <= (off+n-1)/pageBytes; pg++ {
		if !in.pageIn(pg) {
			return false
		}
	}
	return true
}

// missingBytes totals the not-yet-resident page bytes overlapping
// [off, off+n), clamped to the file size — the volume a read must
// fault in from the device.
func (in *inode) missingBytes(off, n int64) int64 {
	if in.resident || n <= 0 {
		return 0
	}
	size := in.data.Len()
	var miss int64
	for pg := off / pageBytes; pg <= (off+n-1)/pageBytes; pg++ {
		if in.pageIn(pg) {
			continue
		}
		b := int64(pageBytes)
		if rem := size - pg*pageBytes; rem < b {
			b = rem
		}
		if b > 0 {
			miss += b
		}
	}
	return miss
}

// markPaged records the pages overlapping [off, off+n) as resident,
// flipping the whole-file flag back on once every page of the current
// size is in (restoring the fast path and zero-copy views).
func (in *inode) markPaged(off, n int64) {
	if in.resident || n <= 0 {
		return
	}
	size := in.data.Len()
	total := pages(size)
	if need := int((total + 63) / 64); len(in.pagedIn) < need {
		grown := make([]uint64, need)
		copy(grown, in.pagedIn)
		in.pagedIn = grown
	}
	for pg := off / pageBytes; pg <= (off+n-1)/pageBytes && pg < total; pg++ {
		if w, b := pg/64, uint(pg%64); in.pagedIn[w]&(1<<b) == 0 {
			in.pagedIn[w] |= 1 << b
			in.pagesIn++
		}
	}
	if in.pagesIn >= total {
		in.resident = true
		in.pagedIn = nil
		in.pagesIn = 0
	}
}

// pageIn reports one page's residency.
func (in *inode) pageIn(pg int64) bool {
	w := pg / 64
	if w >= int64(len(in.pagedIn)) {
		return false
	}
	return in.pagedIn[w]&(1<<uint(pg%64)) != 0
}
