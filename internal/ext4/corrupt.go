package ext4

import "fmt"

// CorruptAt flips one bit of name's contents at byte offset off,
// modeling at-rest media corruption (a latent sector error the drive's
// own ECC missed). The damage is applied directly to the stored bytes
// — page cache and device state stay in sync, exactly as a scrubbed
// medium would present it — so it is visible to every subsequent read
// and survives crashes. Detection is the reader's job: SSTable blocks
// carry CRC-32C trailers, the WAL carries per-fragment CRCs.
func (fs *FS) CorruptAt(name string, off int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, ok := fs.names[name]
	if !ok {
		return fmt.Errorf("ext4: corrupt %q: no such file", name)
	}
	if off < 0 || off >= in.data.Len() {
		return fmt.Errorf("ext4: corrupt %q: offset %d out of range [0,%d)", name, off, in.data.Len())
	}
	in.data.chunks[off/extentBytes][off%extentBytes] ^= 0x40
	return nil
}
