package ext4

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

func newTestFS() *FS {
	return New(DefaultConfig(), ssd.New(ssd.PM883()))
}

func TestCreateWriteRead(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, err := fs.Create(tl, "a.sst")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello ordered world")
	if err := f.Append(tl, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := f.ReadAt(tl, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read %q, want %q", buf, payload)
	}
	if f.Size() != int64(len(payload)) {
		t.Fatalf("size %d, want %d", f.Size(), len(payload))
	}
	if err := f.Close(tl); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(tl); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestReadAtBounds(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "f")
	f.Append(tl, []byte("0123456789"))
	buf := make([]byte, 4)
	n, err := f.ReadAt(tl, buf, 8)
	if err != io.EOF || n != 2 {
		t.Fatalf("short read: n=%d err=%v, want 2/EOF", n, err)
	}
	if string(buf[:n]) != "89" {
		t.Fatalf("tail read %q", buf[:n])
	}
	if _, err := f.ReadAt(tl, buf, 11); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if _, err := f.ReadAt(tl, buf, -1); err == nil {
		t.Fatal("negative-offset read succeeded")
	}
}

func TestOpenMissing(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	if _, err := fs.Open(tl, "nope"); err == nil {
		t.Fatal("opening a missing file succeeded")
	}
	if _, err := fs.Size(tl, "nope"); err == nil {
		t.Fatal("sizing a missing file succeeded")
	}
	if err := fs.Remove(tl, "nope"); err == nil {
		t.Fatal("removing a missing file succeeded")
	}
}

func TestWriteFileReadFileListExists(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	if err := fs.WriteFile(tl, "b", []byte("bee")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(tl, "a", []byte("ay")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(tl, "a")
	if err != nil || string(got) != "ay" {
		t.Fatalf("ReadFile: %q, %v", got, err)
	}
	if names := fs.List(tl); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
	if !fs.Exists(tl, "a") || fs.Exists(tl, "c") {
		t.Fatal("Exists is wrong")
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "old", []byte("old-data"))
	fs.WriteFile(tl, "target", []byte("target-data"))
	if err := fs.Rename(tl, "old", "target"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists(tl, "old") {
		t.Fatal("old name survives rename")
	}
	got, _ := fs.ReadFile(tl, "target")
	if string(got) != "old-data" {
		t.Fatalf("target holds %q after rename", got)
	}
	if err := fs.Rename(tl, "ghost", "x"); err == nil {
		t.Fatal("renaming a missing file succeeded")
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "f", []byte("first"))
	f, err := fs.Create(tl, "f")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Fatalf("recreated file has size %d", f.Size())
	}
}

// --- journaling semantics ---

func TestAsyncCommitMakesDataDurable(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "sst", []byte("kv pairs"))
	if got := fs.DurableSize("sst"); got != -1 {
		t.Fatalf("file durable (%d bytes) before any commit", got)
	}
	// Cross one commit interval: the async commit runs lazily on the
	// next filesystem operation.
	tl.Advance(6 * vclock.Second)
	fs.Exists(tl, "sst")
	if got := fs.DurableSize("sst"); got != 8 {
		t.Fatalf("durable size %d after async commit, want 8", got)
	}
	st := fs.Stats()
	if st.Syncs != 0 {
		t.Fatalf("async commit counted as sync: %+v", st)
	}
	if st.AsyncCommits != 1 {
		t.Fatalf("async commits = %d, want 1", st.AsyncCommits)
	}
}

func TestMultipleIntervalsRunMultipleCommits(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	for i := 0; i < 3; i++ {
		fs.WriteFile(tl, fmt.Sprintf("f%d", i), []byte("x"))
		tl.Advance(5 * vclock.Second)
	}
	fs.Exists(tl, "f0") // trigger catch-up
	if st := fs.Stats(); st.AsyncCommits != 3 {
		t.Fatalf("async commits = %d, want 3", st.AsyncCommits)
	}
}

func TestEmptyIntervalsCommitNothing(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	tl.Advance(100 * vclock.Second)
	fs.Exists(tl, "x")
	if st := fs.Stats(); st.AsyncCommits != 0 {
		t.Fatalf("empty transactions committed: %+v", st)
	}
}

func TestSyncMakesDurableImmediately(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "sst")
	f.Append(tl, []byte("data"))
	before := tl.Now()
	if err := f.Sync(tl); err != nil {
		t.Fatal(err)
	}
	if tl.Now() <= before {
		t.Fatal("fsync did not stall the caller")
	}
	if got := fs.DurableSize("sst"); got != 4 {
		t.Fatalf("durable size %d after fsync, want 4", got)
	}
	st := fs.Stats()
	if st.Syncs != 1 || st.BytesSynced != 4 {
		t.Fatalf("sync accounting wrong: %+v", st)
	}
	if st.SyncStall <= 0 {
		t.Fatalf("no sync stall recorded: %+v", st)
	}
}

func TestSyncIsSelective(t *testing.T) {
	// fsync under delayed allocation is a selective commit: the
	// target file becomes durable; unrelated dirty files stay in the
	// running transaction until the next asynchronous commit.
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "bystander", bytes.Repeat([]byte("b"), 1000))
	f, _ := fs.Create(tl, "synced")
	f.Append(tl, []byte("s"))
	f.Sync(tl)
	if got := fs.DurableSize("synced"); got != 1 {
		t.Fatalf("synced file durable size %d, want 1", got)
	}
	if got := fs.DurableSize("bystander"); got != -1 {
		t.Fatalf("bystander durable (size %d) from someone else's fsync", got)
	}
	st := fs.Stats()
	if st.BytesSynced != 1 {
		t.Fatalf("BytesSynced = %d, want 1 (the fsynced file only)", st.BytesSynced)
	}
	// The async commit picks the bystander up later.
	tl.Advance(5 * vclock.Second)
	fs.Exists(tl, "bystander")
	if got := fs.DurableSize("bystander"); got != 1000 {
		t.Fatalf("bystander not committed asynchronously (size %d)", got)
	}
}

func TestDirtyThresholdThrottlesWriter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DirtyThreshold = 1 << 20
	fs := New(cfg, ssd.New(ssd.PM883()))
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "big")
	f.Append(tl, make([]byte, 2<<20))
	st := fs.Stats()
	if st.ThrottleStall <= 0 {
		t.Fatalf("no throttle stall despite crossing threshold: %+v", st)
	}
	if st.BytesFlushed < 2<<20 {
		t.Fatalf("throttling did not drain the backlog: %+v", st)
	}
	if fs.DirtyBytes() != 0 {
		t.Fatalf("dirty bytes %d after forced writeback", fs.DirtyBytes())
	}
}

func TestAppendToReadOnlyHandleFails(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "f", []byte("x"))
	f, _ := fs.Open(tl, "f")
	if err := f.Append(tl, []byte("y")); err == nil {
		t.Fatal("append to read-only handle succeeded")
	}
}

// --- crash semantics ---

func TestCrashLosesUncommittedCreate(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "volatile", []byte("gone"))
	fs.Crash(tl.Now())
	if fs.Exists(tl, "volatile") {
		t.Fatal("uncommitted file survived the crash")
	}
}

func TestCrashKeepsCommittedData(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "kept", []byte("durable"))
	fs.ForceCommit(tl)
	fs.Crash(tl.Now())
	got, err := fs.ReadFile(tl, "kept")
	if err != nil || string(got) != "durable" {
		t.Fatalf("committed file after crash: %q, %v", got, err)
	}
}

func TestCrashTruncatesToCommittedSize(t *testing.T) {
	// The WAL-tail-loss behaviour: data appended after the last
	// commit of the inode is lost.
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "wal")
	f.Append(tl, []byte("committed-prefix|"))
	fs.ForceCommit(tl)
	f.Append(tl, []byte("lost-tail"))
	fs.Crash(tl.Now())
	got, _ := fs.ReadFile(tl, "wal")
	if string(got) != "committed-prefix|" {
		t.Fatalf("after crash WAL holds %q", got)
	}
}

func TestCrashResurrectsUncommittedRemove(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "backup", []byte("old sstable"))
	fs.ForceCommit(tl)
	fs.Remove(tl, "backup")
	if fs.Exists(tl, "backup") {
		t.Fatal("file visible after remove")
	}
	fs.Crash(tl.Now())
	got, err := fs.ReadFile(tl, "backup")
	if err != nil || string(got) != "old sstable" {
		t.Fatalf("uncommitted remove not rolled back: %q, %v", got, err)
	}
}

func TestCommittedRemoveStaysGone(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "obsolete", []byte("x"))
	fs.ForceCommit(tl)
	fs.Remove(tl, "obsolete")
	fs.ForceCommit(tl)
	fs.Crash(tl.Now())
	if fs.Exists(tl, "obsolete") {
		t.Fatal("committed remove rolled back")
	}
}

func TestCrashRollsBackUncommittedRename(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "MANIFEST-1", []byte("m1"))
	fs.ForceCommit(tl)
	fs.Rename(tl, "MANIFEST-1", "CURRENT")
	fs.Crash(tl.Now())
	if fs.Exists(tl, "CURRENT") {
		t.Fatal("uncommitted rename survived")
	}
	if !fs.Exists(tl, "MANIFEST-1") {
		t.Fatal("rename source lost")
	}
}

func TestCrashSeversHandles(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "f")
	f.Append(tl, []byte("x"))
	fs.ForceCommit(tl)
	fs.Crash(tl.Now())
	if err := f.Append(tl, []byte("y")); err == nil {
		t.Fatal("write through severed handle succeeded")
	}
	if _, err := f.ReadAt(tl, make([]byte, 1), 0); err == nil {
		t.Fatal("read through severed handle succeeded")
	}
}

func TestCrashClearsKernelTables(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "sst")
	f.Append(tl, []byte("x"))
	fs.CheckCommit(tl, f.Ino())
	fs.ForceCommit(tl)
	if !fs.IsCommitted(tl, f.Ino()) {
		t.Fatal("inode not committed after forced commit")
	}
	fs.Crash(tl.Now())
	if fs.IsCommitted(tl, f.Ino()) {
		t.Fatal("Committed Table survived the crash")
	}
	if fs.PendingCount() != 0 || fs.CommittedCount() != 0 {
		t.Fatal("kernel tables not cleared by crash")
	}
}

func TestColdReadAfterCrashChargesDevice(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "f", make([]byte, 1<<20))
	fs.ForceCommit(tl)
	fs.Crash(tl.Now())
	reads0 := fs.Device().Stats().Reads
	if _, err := fs.ReadFile(tl, "f"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Device().Stats().Reads; got != reads0+1 {
		t.Fatalf("cold read issued %d device reads, want 1", got-reads0)
	}
	// Second read is warm.
	fs.ReadFile(tl, "f")
	if got := fs.Device().Stats().Reads; got != reads0+1 {
		t.Fatalf("warm read hit the device")
	}
}

// --- syscall semantics ---

func TestCheckCommitPendingToCommitted(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "sst-230")
	f.Append(tl, []byte("merged kv pairs"))
	fs.CheckCommit(tl, f.Ino())
	if fs.IsCommitted(tl, f.Ino()) {
		t.Fatal("inode committed before any journal commit")
	}
	if fs.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", fs.PendingCount())
	}
	tl.Advance(5 * vclock.Second)
	if !fs.IsCommitted(tl, f.Ino()) {
		t.Fatal("inode not committed after the commit interval")
	}
	if fs.PendingCount() != 0 || fs.CommittedCount() != 1 {
		t.Fatalf("tables: pending=%d committed=%d", fs.PendingCount(), fs.CommittedCount())
	}
}

func TestCheckCommitAlreadyDurable(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "sst")
	f.Append(tl, []byte("x"))
	fs.ForceCommit(tl)
	fs.CheckCommit(tl, f.Ino())
	if !fs.IsCommitted(tl, f.Ino()) {
		t.Fatal("already-durable inode not short-circuited to Committed Table")
	}
}

func TestCheckCommitUnknownInode(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.CheckCommit(tl, 424242)
	if fs.PendingCount() != 0 {
		t.Fatal("unknown inode entered the Pending Table")
	}
	if fs.IsCommitted(tl, 424242) {
		t.Fatal("unknown inode reported committed")
	}
}

func TestRemoveErasesCommittedEntry(t *testing.T) {
	// Paper step 10: deleting a file erases its Committed-Table
	// entry, keeping the tables small and avoiding inode-reuse
	// confusion.
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "sst")
	f.Append(tl, []byte("x"))
	ino := f.Ino()
	fs.CheckCommit(tl, ino)
	fs.ForceCommit(tl)
	if !fs.IsCommitted(tl, ino) {
		t.Fatal("not committed")
	}
	fs.Remove(tl, "sst")
	fs.ForceCommit(tl)
	if fs.IsCommitted(tl, ino) {
		t.Fatal("Committed-Table entry survived file deletion")
	}
}

func TestInodeRedirtiedAfterCommitIsNotPrematurelyCommitted(t *testing.T) {
	// A successor SSTable still being appended when its inode first
	// commits must not satisfy check_commit at the partial size.
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "sst")
	f.Append(tl, []byte("first-half"))
	fs.ForceCommit(tl) // inode committed at partial size
	f.Append(tl, []byte("second-half"))
	fs.CheckCommit(tl, f.Ino()) // file now dirty again
	if fs.IsCommitted(tl, f.Ino()) {
		t.Fatal("partially durable inode short-circuited to Committed Table")
	}
	tl.Advance(5 * vclock.Second)
	if !fs.IsCommitted(tl, f.Ino()) {
		t.Fatal("inode never committed at full size")
	}
	if got := fs.DurableSize("sst"); got != int64(len("first-halfsecond-half")) {
		t.Fatalf("durable size %d", got)
	}
}

// --- cost-model sanity ---

func TestBufferedWriteMuchCheaperThanSyncedWrite(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "buffered")
	t0 := tl.Now()
	f.Append(tl, make([]byte, 2<<20))
	buffered := tl.Now().Sub(t0)

	f2, _ := fs.Create(tl, "synced")
	t1 := tl.Now()
	f2.Append(tl, make([]byte, 2<<20))
	f2.Sync(tl)
	synced := tl.Now().Sub(t1)

	if synced < 5*buffered {
		t.Fatalf("synced write (%v) not far slower than buffered (%v)", synced, buffered)
	}
}

func TestCommittedSizeTracksDurablePrefix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommitInterval = 10 * vclock.Millisecond
	fs := New(cfg, ssd.New(ssd.PM883()))
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "MANIFEST-000001")
	if got := fs.CommittedSize(tl, f.Ino()); got != 0 {
		t.Fatalf("fresh file committed size %d", got)
	}
	f.Append(tl, make([]byte, 1000))
	fs.ForceCommit(tl)
	if got := fs.CommittedSize(tl, f.Ino()); got != 1000 {
		t.Fatalf("committed size %d after forced commit, want 1000", got)
	}
	f.Append(tl, make([]byte, 500))
	if got := fs.CommittedSize(tl, f.Ino()); got != 1000 {
		t.Fatalf("committed size %d advanced without a commit", got)
	}
	if got := fs.CommittedSize(tl, 999999); got != 0 {
		t.Fatalf("unknown inode committed size %d", got)
	}
}

func TestCommitCoversOnlyFlushedPrefix(t *testing.T) {
	// Delalloc semantics: a commit makes an inode durable only up to
	// what the flusher wrote back; the unflushed tail waits for the
	// next cycle.
	cfg := DefaultConfig()
	cfg.CommitInterval = 10 * vclock.Millisecond
	cfg.FlusherDelay = 10 * vclock.Millisecond
	fs := New(cfg, ssd.New(ssd.PM883()))
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "wal")
	f.Append(tl, make([]byte, 100)) // at t≈0
	tl.Advance(12 * vclock.Millisecond)
	fs.Exists(tl, "wal") // flusher writes the 100 bytes; no commit due yet at entry ordering
	f.Append(tl, make([]byte, 50))
	tl.Advance(12 * vclock.Millisecond)
	fs.Exists(tl, "wal") // second cycle
	d := fs.DurableSize("wal")
	if d != 100 && d != 150 {
		t.Fatalf("durable size %d, want a flushed-prefix value (100 or 150)", d)
	}
	fs.ForceCommit(tl)
	if got := fs.DurableSize("wal"); got != 150 {
		t.Fatalf("durable size %d after force commit", got)
	}
}

func TestFlusherRunsOffCriticalPath(t *testing.T) {
	fs := newTestFS()
	tl := vclock.NewTimeline(0)
	fs.WriteFile(tl, "big", make([]byte, 32<<20))
	before := tl.Now()
	tl.Advance(10 * vclock.Second)
	fs.Exists(tl, "big") // flusher + commits run
	st := fs.Stats()
	if st.BytesFlushed < 32<<20 {
		t.Fatalf("flusher wrote %d bytes, want the full 32MB", st.BytesFlushed)
	}
	// The caller paid only its page-cache copy, not the device time.
	if tl.Now().Sub(before) > 11*vclock.Second {
		t.Fatal("caller charged for background writeback")
	}
}
