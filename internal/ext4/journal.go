package ext4

import (
	"sort"

	"noblsm/internal/obs"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// SetCommitHook implements vfs.CommitNotifier: hook is invoked at
// every journal-commit boundary that changes durable state, under
// fs.mu, with the full post-commit durable image. It must be fast and
// must not call back into the filesystem. A nil hook (the default)
// disables notification entirely.
func (fs *FS) SetCommitHook(hook func(vfs.CommitRecord)) {
	fs.mu.Lock()
	fs.commitHook = hook
	fs.mu.Unlock()
}

// noteCommitLocked fires the commit hook with the durable image as of
// the just-completed commit. Callers must hold fs.mu.
func (fs *FS) noteCommitLocked(kind string, at vclock.Time) {
	if fs.commitHook == nil {
		return
	}
	fs.commitSeq++
	rec := vfs.CommitRecord{Seq: fs.commitSeq, Kind: kind, At: at,
		Files: make([]vfs.DurableFile, 0, len(fs.durableNames))}
	for name, ino := range fs.durableNames {
		var size int64
		if in := fs.inodes[ino]; in != nil {
			size = in.durableSize
		}
		rec.Files = append(rec.Files, vfs.DurableFile{Name: name, Ino: ino, Size: size})
	}
	sort.Slice(rec.Files, func(i, j int) bool { return rec.Files[i].Name < rec.Files[j].Name })
	fs.commitHook(rec)
}

// catchUp runs every asynchronous journal commit scheduled at or
// before now. The simulation is lazy: instead of a real kjournald
// goroutine, commits execute when the next filesystem entry point
// observes that their wakeup time has passed; their costs are charged
// to the writeback timeline, so they interfere with foreground I/O
// only through the shared device queue — exactly the non-blocking
// behaviour NobLSM exploits.
//
// Callers must hold fs.mu.
func (fs *FS) catchUp(now vclock.Time) {
	for fs.lastCommit+vclock.Time(fs.cfg.CommitInterval) <= now {
		wake := fs.lastCommit.Add(fs.cfg.CommitInterval)
		fs.lastCommit = wake
		if fs.running.empty() {
			continue
		}
		fs.wb.WaitUntil(wake)
		fs.commitLocked(fs.wb.Now(), false)
	}
}

// commitLocked seals and commits the running transaction at virtual
// time at, returning the completion time. With delayed allocation the
// commit journals metadata only: each inode becomes durable up to the
// prefix the background flusher (or an fsync) has already written
// back; still-dirty tails re-enter the next running transaction. For
// sync==true (directory sync) the caller is expected to wait for the
// returned time; async commits run on the journal timeline.
//
// Sequence, per JBD2:
//  1. write the journal descriptor + metadata blocks;
//  2. issue a flush barrier;
//  3. the transaction is durable: record durable sizes (persisted
//     prefixes), apply namespace operations to the durable view, and
//     move fully-persisted Pending-Table inodes to the Committed Table
//     (the paper's step 7).
//
// Callers must hold fs.mu.
func (fs *FS) commitLocked(at vclock.Time, sync bool) vclock.Time {
	t := fs.running
	fs.running = newTxn()
	// Journal commits are serial: this one starts after prior journal
	// work completes.
	start := vclock.Max(at, fs.wb.Now())
	if t.empty() {
		if !sync {
			return start
		}
		// fsync on a clean tree still issues a barrier.
		done := fs.dev.Flush(start)
		fs.wb.WaitUntil(done)
		if done > fs.stallUntil {
			fs.stallFrom, fs.stallUntil = start, done
		}
		return done
	}

	// Journal blocks: one descriptor plus one metadata block per
	// inode, then the commit record behind a barrier. This is the
	// locked section of the commit: concurrent filesystem entries
	// stall on it (sync commits only).
	lockedFrom := start
	meta := fs.cfg.MetadataBlock * int64(1+len(t.inodes))
	done := fs.dev.Write(start, meta)
	done = fs.dev.Flush(done)
	fs.wb.WaitUntil(done)

	if sync {
		if done > fs.stallUntil {
			fs.stallFrom, fs.stallUntil = lockedFrom, done
		}
	} else {
		fs.m.asyncCommits.Inc()
	}
	if fs.trace != nil {
		mode := "async"
		if sync {
			mode = "sync"
		}
		fs.trace.Span(obs.TidJournal, "journal", "jbd2.commit", start, done,
			obs.KV{K: "mode", V: mode}, obs.KV{K: "inodes", V: len(t.inodes)},
			obs.KV{K: "ns_ops", V: len(t.ops)}, obs.KV{K: "meta_bytes", V: meta})
	}

	// The transaction is durable; expose its effects.
	for _, in := range t.inodes {
		in.inRunning = false
		if !sync && in.persisted > in.durableSize {
			fs.m.bytesAsyncCommitted.Add(in.persisted - in.durableSize)
		}
		in.durableSize = in.persisted
		if fs.pending[in.ino] && in.persisted == in.data.Len() {
			delete(fs.pending, in.ino)
			fs.committed[in.ino] = true
		}
		if in.dirty() > 0 && in.nlink > 0 {
			// The unpersisted tail belongs to the next transaction.
			fs.running.add(in)
		}
	}
	for _, op := range t.ops {
		switch op.kind {
		case opCreate:
			fs.durableNames[op.name] = op.ino
		case opRemove:
			if fs.durableNames[op.name] == op.ino {
				delete(fs.durableNames, op.name)
			}
			// Deleting the last link erases the file's Committed-Table
			// entry (paper's step 10), avoiding stale hits after inode
			// reuse, and frees the in-memory inode once nothing
			// references it. While other hard links remain (checkpoint
			// exports), the inode and its commit status stay live.
			if in := fs.inodes[op.ino]; in == nil || in.nlink == 0 {
				delete(fs.committed, op.ino)
				delete(fs.pending, op.ino)
				if in != nil {
					delete(fs.inodes, op.ino)
					if in.handles == 0 {
						in.data.Release()
					}
				}
			}
		case opRename:
			if fs.durableNames[op.name] == op.ino {
				delete(fs.durableNames, op.name)
			}
			fs.durableNames[op.newName] = op.ino
		}
	}
	kind := vfs.CommitAsync
	if sync {
		kind = vfs.CommitSyncDir
	}
	fs.noteCommitLocked(kind, done)
	return done
}

// fastCommitLocked implements fsync's selective commit: the target
// file's dirty data is written back and its inode — plus its own
// pending namespace operations — is journaled behind a flush barrier,
// while unrelated dirty inodes stay in the running transaction for the
// next asynchronous commit. This models ext4 with delayed allocation
// (the default): one file's fsync does not write back other files'
// delalloc pages, so the caller pays for its own data and the barrier
// only — which is precisely why the paper's sync *count* and per-file
// synced volume are the governing costs.
//
// Callers must hold fs.mu.
func (fs *FS) fastCommitLocked(at vclock.Time, target *inode) vclock.Time {
	// The caller's own data writeback is submitted directly to the
	// device (contending only through its queue); it does not wait
	// for the journal thread's backlog.
	done := at
	var synced int64
	if d := target.dirty(); d > 0 {
		done = fs.dev.Write(done, d)
		synced += d
		fs.dirtyBytes -= d
		target.persisted = target.data.Len()
	}
	// The journal commit itself serializes behind prior journal work
	// (JBD2 commits are ordered).
	lockedFrom := vclock.Max(done, fs.wb.Now())
	done = fs.dev.Write(lockedFrom, fs.cfg.MetadataBlock*2)
	done = fs.dev.Flush(done)
	fs.wb.WaitUntil(done)
	fs.m.bytesSynced.Add(synced)
	if done > fs.stallUntil {
		fs.stallFrom, fs.stallUntil = lockedFrom, done
	}

	// The target's inode is now durable at its current size; its own
	// namespace operations commit with it, the rest stay pending.
	target.durableSize = target.data.Len()
	if target.inRunning {
		target.inRunning = false
		delete(fs.running.inodes, target.ino)
	}
	if fs.pending[target.ino] {
		delete(fs.pending, target.ino)
		fs.committed[target.ino] = true
	}
	remaining := fs.running.ops[:0]
	for _, op := range fs.running.ops {
		if op.ino != target.ino {
			remaining = append(remaining, op)
			continue
		}
		switch op.kind {
		case opCreate:
			fs.durableNames[op.name] = op.ino
		case opRemove:
			if fs.durableNames[op.name] == op.ino {
				delete(fs.durableNames, op.name)
			}
			if in := fs.inodes[op.ino]; in == nil || in.nlink == 0 {
				delete(fs.committed, op.ino)
				delete(fs.pending, op.ino)
				if in != nil {
					delete(fs.inodes, op.ino)
					if in.handles == 0 {
						in.data.Release()
					}
				}
			}
		case opRename:
			if fs.durableNames[op.name] == op.ino {
				delete(fs.durableNames, op.name)
			}
			fs.durableNames[op.newName] = op.ino
		}
	}
	fs.running.ops = remaining
	fs.noteCommitLocked(vfs.CommitFsync, done)
	return done
}

// ForceCommit drains the flusher and synchronously commits the running
// transaction, making all current contents durable. It does not count
// as an application sync; it exists for tests and experiment setup
// (e.g. quiescing before a measured phase).
func (fs *FS) ForceCommit(tl *vclock.Timeline) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.catchUp(tl.Now())
	fs.flushAllLocked()
	done := fs.commitLocked(vclock.Max(tl.Now(), fs.flusher.Now()), false)
	tl.WaitUntil(done)
}

// flushAllLocked drains the flusher queue completely (unbounded by the
// caller's clock). Callers must hold fs.mu.
func (fs *FS) flushAllLocked() {
	for len(fs.flushQueue) > 0 {
		e := fs.flushQueue[0]
		fs.flushQueue = fs.flushQueue[1:]
		e.in.queued = false
		d := e.in.dirty()
		if d <= 0 || e.in.nlink == 0 {
			continue
		}
		done := fs.dev.Write(fs.flusher.Now(), d)
		fs.flusher.WaitUntil(done)
		e.in.persisted = e.in.data.Len()
		fs.dirtyBytes -= d
		fs.m.bytesFlushed.Add(d)
	}
}

// LastCommitAt reports the wakeup time of the most recent asynchronous
// commit cycle.
func (fs *FS) LastCommitAt() vclock.Time {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.lastCommit
}
