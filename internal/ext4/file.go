package ext4

import (
	"fmt"
	"io"
	"noblsm/internal/obs"

	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// file is an open handle. Handles are invalidated by Crash (their
// generation no longer matches the filesystem's).
type file struct {
	fs       *FS
	in       *inode
	gen      int64
	writable bool
	closed   bool
}

var _ vfs.File = (*file)(nil)

func (f *file) check() error {
	if f.closed {
		return vfs.ErrClosed
	}
	if f.gen != f.fs.gen {
		return fmt.Errorf("%w: handle severed by crash", vfs.ErrClosed)
	}
	return nil
}

// Append implements vfs.File: a buffered write into the page cache.
// The data becomes durable only when the inode's transaction commits
// (ordered mode) or on Sync. Crossing the dirty threshold throttles
// the writer behind a forced commit, as the kernel's dirty_ratio does.
func (f *file) Append(tl *vclock.Timeline, p []byte) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	if !f.writable {
		return fmt.Errorf("ext4: %w", errReadOnly)
	}
	fs.enter(tl)
	fs.charge(tl, int64(len(p)))
	appendAt := f.in.data.Len()
	f.in.data.Append(p)
	// Appended bytes enter the page cache; on a partially resident
	// post-crash file (a reopened WAL, say) the written pages are
	// resident even though older ones may not be.
	f.in.markPaged(appendAt, int64(len(p)))
	fs.dirtyBytes += int64(len(p))
	fs.running.add(f.in)
	fs.markDirty(f.in, tl.Now())
	if fs.dirtyBytes > fs.cfg.DirtyThreshold {
		// Writer throttling (balance_dirty_pages): the writer waits
		// for the flusher to drain the backlog.
		fs.flushAllLocked()
		fs.m.throttleStallNs.AddDuration(tl.WaitUntil(fs.flusher.Now()))
	}
	return nil
}

var errReadOnly = fmt.Errorf("file is read-only")

// ReadAt implements vfs.File. Page-cache-resident data costs a memcpy;
// after a crash the first reads of a file are charged to the device.
//
// The resident-case memcpy runs outside fs.mu: file data is append-
// only while any handle is open (truncation and chunk recycling both
// require the last handle closed, and a crash severs handles under
// fs.mu before truncating), so bytes below the size observed under the
// lock are immutable and the copy cannot race with a concurrent
// Append, which only writes beyond that size.
func (f *file) ReadAt(tl *vclock.Timeline, p []byte, off int64) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	if err := f.check(); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	fs.enter(tl)
	size := f.in.data.Len()
	if off < 0 || off > size {
		fs.mu.Unlock()
		return 0, fmt.Errorf("ext4: read offset %d out of range [0,%d]", off, size)
	}
	n := len(p)
	if int64(n) > size-off {
		n = int(size - off)
	}
	if f.in.rangeResident(off, int64(n)) {
		// Snapshot the chunk table under the lock. Full chunks are
		// immutable; the tail chunk's slice header is the one element
		// a concurrent Append rewrites, so its captured value stands
		// in for it during the unlocked copy.
		nCh := int((size + extentBytes - 1) / extentBytes)
		chunks := f.in.data.chunks[:nCh]
		var tail []byte
		if nCh > 0 {
			tail = chunks[nCh-1]
		}
		fs.charge(tl, int64(n))
		fs.mu.Unlock()
		if n > 0 {
			readAtChunks(chunks, tail, p[:n], off)
		}
		if n < len(p) {
			return n, io.EOF
		}
		return n, nil
	}
	// Cold (or partially cold) range: fault the missing pages in from
	// the device as one request, then serve the copy from the cache.
	n = f.in.data.ReadAt(p, off)
	miss := f.in.missingBytes(off, int64(n))
	done := fs.dev.Read(tl.Now(), miss)
	f.in.markPaged(off, int64(n))
	tl.WaitUntil(done)
	fs.mu.Unlock()
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// ReadView implements vfs.ViewReader: a zero-copy read of resident,
// single-chunk ranges. The returned slice aliases the page cache; the
// same append-only invariant that lets ReadAt copy outside fs.mu (see
// above) makes the alias safe until the last handle closes — chunk
// recycling requires handles==0. Non-resident data, or a range that
// crosses an extent chunk, reports ok=false and the caller falls back
// to ReadAt. Virtual cost on success equals a resident ReadAt of n
// bytes.
func (f *file) ReadView(tl *vclock.Timeline, n int, off int64) ([]byte, bool, error) {
	if n <= 0 {
		return nil, false, nil
	}
	fs := f.fs
	fs.mu.Lock()
	if err := f.check(); err != nil {
		fs.mu.Unlock()
		return nil, false, err
	}
	fs.enter(tl)
	size := f.in.data.Len()
	if off < 0 || off+int64(n) > size {
		fs.mu.Unlock()
		return nil, false, fmt.Errorf("ext4: read view %d+%d out of range [0,%d]", off, n, size)
	}
	if !f.in.rangeResident(off, int64(n)) {
		fs.mu.Unlock()
		return nil, false, nil
	}
	ci := off / extentBytes
	co := int(off % extentBytes)
	chunk := f.in.data.chunks[ci]
	if co+n > len(chunk) {
		// The range spans two chunks (or runs into the mutable tail
		// beyond the captured header); copy path handles it.
		fs.mu.Unlock()
		return nil, false, nil
	}
	fs.charge(tl, int64(n))
	fs.mu.Unlock()
	return chunk[co : co+n : co+n], true, nil
}

// Sync implements vfs.File: fsync. It writes back this file's dirty
// data and journals its inode behind a flush barrier, stalling the
// caller until the barrier completes. With delayed allocation (ext4's
// default), other files' dirty pages are not flushed by this fsync —
// they stay in the running transaction for the periodic commit — so
// the caller pays for its own bytes plus the barrier, which is why the
// paper's sync *count* and per-file synced volume are the governing
// costs.
func (f *file) Sync(tl *vclock.Timeline) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	fs.enter(tl)
	fs.m.syncs.Inc()
	start := tl.Now()
	done := fs.fastCommitLocked(start, f.in)
	stall := tl.WaitUntil(done)
	fs.m.syncStallNs.AddDuration(stall)
	if fs.trace != nil && stall > 0 {
		fs.trace.Span(obs.TidForeground, "stall", "stall.fsync", start, tl.Now(), obs.KV{K: "cause", V: "fsync"}, obs.KV{K: "ino", V: f.in.ino})
	}
	return nil
}

// Close implements vfs.File. POSIX close does not sync.
func (f *file) Close(tl *vclock.Timeline) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	f.in.handles--
	if f.in.handles == 0 && f.fs.inodes[f.in.ino] != f.in {
		// Last handle on an inode whose removal has committed (or that
		// a crash dropped): its page cache is unreachable — recycle.
		f.in.data.Release()
	}
	return nil
}

// Size implements vfs.File.
func (f *file) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.in.data.Len()
}

// Ino implements vfs.File.
func (f *file) Ino() int64 { return f.in.ino }
