package ext4

import (
	"testing"

	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

// TestPageGranularResidency pins the post-crash refill model: the
// first read of each page pays the device, re-reads of the same page
// are page-cache memcpys, and untouched pages stay cold — reading one
// block of a big file must not warm the rest of it.
func TestPageGranularResidency(t *testing.T) {
	dev := ssd.New(ssd.PM883())
	fs := New(DefaultConfig(), dev)
	tl := vclock.NewTimeline(0)

	const size = 1 << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile(tl, "t.sst", data); err != nil {
		t.Fatal(err)
	}
	fs.ForceCommit(tl)

	readAt := func(off int64, n int) vclock.Duration {
		f, err := fs.Open(tl, "t.sst")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close(tl)
		start := tl.Now()
		buf := make([]byte, n)
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			if buf[i] != byte(int(off)+i) {
				t.Fatalf("read corrupt at %d+%d", off, i)
			}
		}
		return tl.Now().Sub(start)
	}

	// Freshly written: resident, no device charge.
	warm := readAt(0, 4096)

	fs.Crash(tl.Now())

	cold1 := readAt(0, 4096)
	if cold1 <= warm {
		t.Fatalf("first post-crash read cost %v, not above the warm %v", cold1, warm)
	}
	// Same page again: warm.
	regot := readAt(0, 4096)
	if regot >= cold1 {
		t.Fatalf("re-read of a faulted page cost %v, as much as the cold %v", regot, cold1)
	}
	// A distant page was NOT warmed by the earlier read.
	cold2 := readAt(512<<10, 4096)
	if cold2 <= warm {
		t.Fatalf("untouched page read cost %v — whole-file residency leaked back", cold2)
	}
	// Fault every page in, then the whole-file fast path must return
	// (resident flag flips back, enabling zero-copy views).
	for off := int64(0); off < size; off += pageBytes {
		readAt(off, pageBytes)
	}
	f, err := fs.Open(tl, "t.sst")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(tl)
	if _, ok, err := f.(interface {
		ReadView(*vclock.Timeline, int, int64) ([]byte, bool, error)
	}).ReadView(tl, 4096, 8192); err != nil || !ok {
		t.Fatalf("ReadView after full refill: ok=%v err=%v, want zero-copy view", ok, err)
	}
}
