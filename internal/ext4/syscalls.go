package ext4

import (
	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

// This file implements the paper's two kernel extensions (Section
// 4.2): the check_commit and is_committed syscalls over the Pending
// and Committed inode tables. NobLSM's user-space tracker (package
// internal/core) is their only intended caller.

// CheckCommit registers inodes for commit tracking — the check_commit
// syscall. Inodes whose current contents are already durable (clean
// and committed at full size) go straight to the Committed Table;
// otherwise they are placed in the Pending Table and migrate when the
// transaction holding them commits.
func (fs *FS) CheckCommit(tl *vclock.Timeline, inos ...int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	if fs.trace != nil {
		fs.trace.Instant(obs.TidTracker, "syscall", "check_commit", tl.Now(),
			obs.KV{K: "inodes", V: len(inos)})
	}
	for _, ino := range inos {
		in, ok := fs.inodes[ino]
		if !ok {
			continue
		}
		if !in.inRunning && in.durableSize == in.data.Len() {
			fs.committed[ino] = true
			continue
		}
		fs.pending[ino] = true
	}
}

// IsCommitted reports whether ino has reached the Committed Table —
// the is_committed syscall. It first lets any due asynchronous commits
// run, since NobLSM's 5-second polling cadence is aligned with the
// journal commit interval precisely so each poll observes the latest
// commit.
func (fs *FS) IsCommitted(tl *vclock.Timeline, ino int64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	committed := fs.committed[ino]
	if fs.trace != nil {
		fs.trace.Instant(obs.TidTracker, "syscall", "is_committed", tl.Now(),
			obs.KV{K: "ino", V: ino}, obs.KV{K: "committed", V: committed})
	}
	return committed
}

// CommittedSize reports how many bytes of ino are journal-committed —
// the durable prefix after a crash. It is the natural companion query
// to is_committed for append-only files that never finish growing
// (NobLSM uses it to defer write-ahead-log deletion until the MANIFEST
// edit that supersedes the log is itself durable).
func (fs *FS) CommittedSize(tl *vclock.Timeline, ino int64) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	in, ok := fs.inodes[ino]
	if !ok || in.durableSize < 0 {
		return 0
	}
	return in.durableSize
}

// PendingCount reports the Pending Table population (for tests and
// introspection).
func (fs *FS) PendingCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.pending)
}

// CommittedCount reports the Committed Table population.
func (fs *FS) CommittedCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.committed)
}
