// Package ext4 is a userspace simulation of the ext4 filesystem in its
// default data=ordered journaling mode with delayed allocation,
// faithful to the contract the NobLSM paper builds on:
//
//   - buffered writes land in the page cache; a background flusher
//     thread streams dirty data to the device continuously (after a
//     short ageing delay), off every caller's critical path;
//   - JBD2 batches metadata changes (inodes, namespace operations)
//     into a running transaction and commits transactions serially,
//     every commit interval (5 s by default). A commit makes each
//     inode durable up to the prefix its data writeback has reached —
//     so a committed inode implies durable data (the ordered-mode
//     guarantee), and an append-only file's crash-surviving length is
//     whatever the last commit covered, which is how an unsynced
//     write-ahead log loses its tail;
//   - fsync writes back the target file's remaining dirty data and
//     journals its inode behind a device flush barrier, stalling the
//     caller; with delayed allocation it does not write back other
//     files' dirty pages (their durability waits for the periodic
//     commit);
//   - on a crash (power cut) only journal-committed state survives:
//     uncommitted creations vanish, uncommitted deletions and renames
//     resurrect, file contents roll back to their committed prefixes,
//     and open handles are severed.
//
// The package also carries the paper's kernel extension: the Pending
// and Committed inode tables plus the syscalls CheckCommit and
// IsCommitted (Section 4.2 of the paper) — an inode moves to the
// Committed Table when a commit covers its full contents — and
// CommittedSize, the companion query for append-only files (the
// MANIFEST) whose durable prefix gates log and predecessor deletion.
// The tables live in (volatile) kernel memory and are cleared by a
// crash.
//
// All costs — page-cache copies, device transfers, journal barriers —
// are charged in virtual time (internal/vclock) against the caller's
// timeline, the journal timeline, or the flusher timeline, with the
// shared ssd.Device providing queueing and barrier semantics.
package ext4

import (
	"fmt"
	"sort"
	"sync"

	"noblsm/internal/obs"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// Config holds the tunables of the filesystem simulation.
type Config struct {
	// CommitInterval is the period of asynchronous journal commits
	// (kjournald wakeup). The kernel default is 5 seconds.
	CommitInterval vclock.Duration
	// DirtyThreshold is the number of dirty page-cache bytes that
	// forces an early commit with writer throttling, modeling the
	// kernel's dirty_ratio behaviour (10% of RAM by default — the
	// paper's testbed has 2 TB of DRAM, so the default here is large
	// enough that steady-state benchmarks never hit it).
	DirtyThreshold int64
	// PageCacheLatency is the fixed syscall + copy setup cost of a
	// buffered read or write.
	PageCacheLatency vclock.Duration
	// PageCacheBandwidth is the memcpy rate into the page cache in
	// bytes per second.
	PageCacheBandwidth int64
	// MetadataBlock is the journal descriptor+inode block size
	// charged per committed inode.
	MetadataBlock int64
	// FlusherDelay is how long dirty data ages before the background
	// flusher writes it back (the kernel's dirty_writeback cadence).
	// Zero selects one commit interval, approximating the two-stage
	// write-then-commit pipeline.
	FlusherDelay vclock.Duration
}

// DefaultConfig mirrors a stock ext4 mount on a large-memory host.
func DefaultConfig() Config {
	return Config{
		CommitInterval:     5 * vclock.Second,
		DirtyThreshold:     64 << 30, // effectively unbounded for our scales
		PageCacheLatency:   700 * vclock.Nanosecond,
		PageCacheBandwidth: 5 << 30, // ~5 GB/s memcpy
		MetadataBlock:      4096,
	}
}

// Stats are filesystem-level counters; Syncs and BytesSynced are the
// quantities of the paper's Table 1.
type Stats struct {
	// Syncs counts fsync/fdatasync and directory-sync calls.
	Syncs int64
	// BytesSynced is data written back to the device as a direct
	// consequence of synchronous commits (the paper's "size of data
	// synced").
	BytesSynced int64
	// BytesFlushed is data written back by the continuous background
	// flusher (off every caller's critical path).
	BytesFlushed int64
	// AsyncCommits counts asynchronous (timer/threshold) commits.
	AsyncCommits int64
	// BytesAsyncCommitted is data written back by async commits.
	BytesAsyncCommitted int64
	// SyncStall is the total virtual time callers spent blocked in
	// fsync.
	SyncStall vclock.Duration
	// ThrottleStall is time writers spent blocked on the dirty
	// threshold.
	ThrottleStall vclock.Duration
	// BarrierStall is time other threads spent blocked behind a
	// synchronous commit's ordering barrier (the paper's "sync ...
	// enforces a barrier to stall subsequent I/O operations").
	BarrierStall vclock.Duration
}

type inode struct {
	ino  int64
	data extents
	// persisted is the prefix of data already written back to the
	// device (ordered-mode data writeback).
	persisted int64
	// durableSize is the file length recorded by the last committed
	// transaction containing this inode; -1 if never committed.
	durableSize int64
	// resident reports whether the contents are wholly in the page
	// cache — true for every file since its creation (writes populate
	// the cache), cleared by a crash. While false, pagedIn/pagesIn
	// track per-page refill; see pagecache.go.
	resident bool
	// pagedIn is the per-page residency bitset, non-nil only between
	// a crash and the file becoming fully resident again.
	pagedIn []uint64
	// pagesIn counts set bits in pagedIn.
	pagesIn int64
	// queued is true while the inode waits in the flusher's queue.
	queued bool
	// nlink counts the names referring to this inode in the cached
	// namespace (hard links). Zero means fully unlinked: dirty pages
	// are dropped instead of written back, and the inode is freed once
	// the removal commits.
	nlink int
	// inRunning is true while the inode is part of the running
	// transaction.
	inRunning bool
	// handles counts open (not yet Closed) file handles, including
	// crash-severed ones. Page-cache chunks are recycled only when an
	// inode is both gone from fs.inodes and handle-free.
	handles int
}

func (in *inode) dirty() int64 { return in.data.Len() - in.persisted }

type opKind int

const (
	opCreate opKind = iota
	opRemove
	opRename
)

type nsOp struct {
	kind    opKind
	name    string
	newName string
	ino     int64
}

// txn is a JBD2 transaction: the set of metadata-dirty inodes plus the
// namespace operations performed while it was running.
type txn struct {
	inodes map[int64]*inode
	ops    []nsOp
}

func newTxn() *txn { return &txn{inodes: make(map[int64]*inode)} }

func (t *txn) empty() bool { return len(t.inodes) == 0 && len(t.ops) == 0 }

func (t *txn) add(in *inode) {
	if !in.inRunning {
		in.inRunning = true
		t.inodes[in.ino] = in
	}
}

// FS is the simulated filesystem. It implements vfs.FS.
type FS struct {
	mu  sync.Mutex
	cfg Config
	dev *ssd.Device

	// wb is the journal (jbd2) timeline; flusher is the background
	// page-writeback thread, which continuously streams dirty data
	// to the device independently of commits.
	wb      *vclock.Timeline
	flusher *vclock.Timeline
	// flushQueue holds dirty inodes awaiting background writeback,
	// oldest first, with the time they were dirtied.
	flushQueue []flushEntry

	nextIno int64
	gen     int64 // bumped on crash; invalidates open handles

	// names is the cached (current) namespace; inodes holds every
	// live inode including unlinked ones whose removal has not yet
	// committed (needed for crash resurrection).
	names  map[string]*inode
	inodes map[int64]*inode
	// durableNames is the namespace as of the last committed
	// transaction.
	durableNames map[string]int64

	running    *txn
	lastCommit vclock.Time
	dirtyBytes int64
	// [stallFrom, stallUntil) is the locked commit section of the
	// latest synchronous commit: the journal descriptor/commit-record
	// write and its flush barrier. Operations entering the filesystem
	// inside this window wait for the barrier — the "sync enforces a
	// barrier to stall subsequent I/O operations" behaviour the paper
	// measures. The data-writeback phase of the commit does not stall
	// other threads (they only feel it through device queueing), and
	// asynchronous commits never stall anyone.
	stallFrom  vclock.Time
	stallUntil vclock.Time

	// The paper's two kernel tables (Section 4.2). Volatile: cleared
	// by Crash.
	pending   map[int64]bool
	committed map[int64]bool

	m fsMetrics
	// trace receives journal/syscall events; nil disables tracing at
	// the cost of a single pointer check per site.
	trace *obs.Tracer

	// commitHook, when set, is invoked at the end of every journal
	// commit that changes durable state, with the full post-commit
	// durable image (vfs.CommitNotifier — the CrashFS subscription).
	// It runs under fs.mu and must not call back into the filesystem.
	// Nil costs one pointer check per commit, keeping the default
	// path's virtual timings untouched.
	commitHook func(vfs.CommitRecord)
	commitSeq  int
}

// fsMetrics are the filesystem counters, resolved once from a
// registry under the "ext4." prefix; Stats() is a view over them.
type fsMetrics struct {
	syncs               *obs.Counter
	bytesSynced         *obs.Counter
	bytesFlushed        *obs.Counter
	asyncCommits        *obs.Counter
	bytesAsyncCommitted *obs.Counter
	syncStallNs         *obs.Counter
	throttleStallNs     *obs.Counter
	barrierStallNs      *obs.Counter
}

func newFSMetrics(r *obs.Registry) fsMetrics {
	return fsMetrics{
		syncs:               r.Counter("ext4.syncs"),
		bytesSynced:         r.Counter("ext4.bytes_synced"),
		bytesFlushed:        r.Counter("ext4.bytes_flushed"),
		asyncCommits:        r.Counter("ext4.async_commits"),
		bytesAsyncCommitted: r.Counter("ext4.bytes_async_committed"),
		syncStallNs:         r.Counter("ext4.stall.sync_ns"),
		throttleStallNs:     r.Counter("ext4.stall.throttle_ns"),
		barrierStallNs:      r.Counter("ext4.stall.barrier_ns"),
	}
}

var _ vfs.FS = (*FS)(nil)

// New mounts a fresh, empty filesystem over dev, publishing counters
// into a private registry.
func New(cfg Config, dev *ssd.Device) *FS { return NewObserved(cfg, dev, nil, nil) }

// NewObserved mounts a filesystem whose counters register into r (nil:
// a private registry) and whose journal/syscall events go to trace
// (nil: no tracing).
func NewObserved(cfg Config, dev *ssd.Device, r *obs.Registry, trace *obs.Tracer) *FS {
	if cfg.CommitInterval <= 0 {
		panic("ext4: commit interval must be positive")
	}
	if r == nil {
		r = obs.NewRegistry()
	}
	return &FS{
		cfg:          cfg,
		dev:          dev,
		wb:           vclock.NewTimeline(0),
		flusher:      vclock.NewTimeline(0),
		nextIno:      100, // resemble real inode numbers; 0 stays invalid
		names:        make(map[string]*inode),
		inodes:       make(map[int64]*inode),
		durableNames: make(map[string]int64),
		running:      newTxn(),
		pending:      make(map[int64]bool),
		committed:    make(map[int64]bool),
		m:            newFSMetrics(r),
		trace:        trace,
	}
}

// Device returns the underlying device (for counter snapshots).
func (fs *FS) Device() *ssd.Device { return fs.dev }

// Stats returns a snapshot of the filesystem counters — a view over
// the registry metrics.
func (fs *FS) Stats() Stats {
	return Stats{
		Syncs:               fs.m.syncs.Value(),
		BytesSynced:         fs.m.bytesSynced.Value(),
		BytesFlushed:        fs.m.bytesFlushed.Value(),
		AsyncCommits:        fs.m.asyncCommits.Value(),
		BytesAsyncCommitted: fs.m.bytesAsyncCommitted.Value(),
		SyncStall:           fs.m.syncStallNs.Duration(),
		ThrottleStall:       fs.m.throttleStallNs.Duration(),
		BarrierStall:        fs.m.barrierStallNs.Duration(),
	}
}

// ResetStats zeroes the filesystem counters.
func (fs *FS) ResetStats() {
	for _, c := range []*obs.Counter{
		fs.m.syncs, fs.m.bytesSynced, fs.m.bytesFlushed,
		fs.m.asyncCommits, fs.m.bytesAsyncCommitted,
		fs.m.syncStallNs, fs.m.throttleStallNs, fs.m.barrierStallNs,
	} {
		c.Store(0)
	}
}

// DirtyBytes reports the current dirty page-cache volume.
func (fs *FS) DirtyBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dirtyBytes
}

// enter is called at every application-visible entry point: it makes
// the caller wait out any in-flight synchronous commit barrier and
// then runs due asynchronous commits. Callers must hold fs.mu.
func (fs *FS) enter(tl *vclock.Timeline) {
	if tl.Now() >= fs.stallFrom {
		if d := tl.WaitUntil(fs.stallUntil); d > 0 {
			fs.m.barrierStallNs.AddDuration(d)
		}
	}
	fs.flushLocked(tl.Now())
	fs.catchUp(tl.Now())
}

// flushLocked advances the background flusher up to now: dirty inodes
// are written back continuously on the flusher's own timeline
// (contending with everyone else only through the device queue). With
// delayed allocation this is the only path that persists data between
// fsyncs; journal commits then make whatever has been written back
// durable. Callers must hold fs.mu.
func (fs *FS) flushLocked(now vclock.Time) {
	delay := fs.flusherDelay()
	// Entries are enqueued by callers on different timelines, so the
	// queue is not strictly time-ordered; scan past not-yet-aged
	// entries instead of stopping at them, or an aged entry can be
	// starved behind a future-dated one.
	// Fast path: find the first entry this pass would consume. In the
	// common case — flusher already caught up to now, or nothing has
	// aged past the delay — the queue is left exactly as it is, and
	// re-copying it (the old behaviour) dominated wall-clock profiles
	// of compaction-heavy runs. The flusher timeline only advances
	// when an entry is written back, so until the first consumed entry
	// the checks below see the same values the processing loop would.
	first := 0
	for ; first < len(fs.flushQueue); first++ {
		if fs.flusher.Now() >= now {
			return
		}
		if fs.flushQueue[first].at.Add(delay) <= now {
			break
		}
	}
	if first == len(fs.flushQueue) {
		return
	}
	kept := fs.flushQueue[:first]
	for i := first; i < len(fs.flushQueue); i++ {
		e := fs.flushQueue[i]
		if fs.flusher.Now() >= now {
			kept = append(kept, fs.flushQueue[i:]...)
			break
		}
		if e.at.Add(delay) > now {
			kept = append(kept, e)
			continue
		}
		e.in.queued = false
		d := e.in.dirty()
		if d <= 0 {
			continue
		}
		if e.in.nlink == 0 {
			// Dirty pages of an unlinked file are dropped, not
			// written back; keep the global accounting honest.
			fs.dirtyBytes -= d
			e.in.persisted = e.in.data.Len()
			continue
		}
		start := vclock.Max(fs.flusher.Now(), e.at.Add(delay))
		done := fs.dev.Write(start, d)
		fs.flusher.WaitUntil(done)
		e.in.persisted = e.in.data.Len()
		fs.dirtyBytes -= d
		fs.m.bytesFlushed.Add(d)
		if fs.trace != nil {
			fs.trace.Span(obs.TidFlusher, "writeback", "writeback.flush", start, done,
				obs.KV{K: "ino", V: e.in.ino}, obs.KV{K: "bytes", V: d})
		}
	}
	fs.flushQueue = kept
}

// markDirty queues an inode for background writeback. Callers must
// hold fs.mu.
func (fs *FS) markDirty(in *inode, at vclock.Time) {
	if !in.queued {
		in.queued = true
		fs.flushQueue = append(fs.flushQueue, flushEntry{in, at})
	}
}

// flushEntry is one flusher work item.
type flushEntry struct {
	in *inode
	at vclock.Time
}

// flusherDelay resolves the configured writeback ageing delay.
func (fs *FS) flusherDelay() vclock.Duration {
	if fs.cfg.FlusherDelay > 0 {
		return fs.cfg.FlusherDelay
	}
	return fs.cfg.CommitInterval
}

// charge applies the page-cache cost for n bytes to tl.
func (fs *FS) charge(tl *vclock.Timeline, n int64) {
	d := fs.cfg.PageCacheLatency
	if n > 0 {
		d += vclock.Duration(n * int64(vclock.Second) / fs.cfg.PageCacheBandwidth)
	}
	tl.Advance(d)
}

// Create implements vfs.FS. An existing file is replaced, as POSIX
// O_CREAT|O_TRUNC does.
func (fs *FS) Create(tl *vclock.Timeline, name string) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	if old, ok := fs.names[name]; ok {
		fs.unlinkLocked(name, old)
	}
	in := &inode{
		ino:         fs.nextIno,
		durableSize: -1,
		resident:    true,
		nlink:       1,
		handles:     1,
	}
	fs.nextIno++
	fs.names[name] = in
	fs.inodes[in.ino] = in
	fs.running.add(in)
	fs.running.ops = append(fs.running.ops, nsOp{kind: opCreate, name: name, ino: in.ino})
	return &file{fs: fs, in: in, gen: fs.gen, writable: true}, nil
}

// Open implements vfs.FS.
func (fs *FS) Open(tl *vclock.Timeline, name string) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	in, ok := fs.names[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	in.handles++
	return &file{fs: fs, in: in, gen: fs.gen}, nil
}

// ReadFile implements vfs.FS.
func (fs *FS) ReadFile(tl *vclock.Timeline, name string) ([]byte, error) {
	f, err := fs.Open(tl, name)
	if err != nil {
		return nil, err
	}
	defer f.Close(tl)
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(tl, buf, 0); err != nil && len(buf) > 0 {
		return nil, err
	}
	return buf, nil
}

// WriteFile implements vfs.FS.
func (fs *FS) WriteFile(tl *vclock.Timeline, name string, data []byte) error {
	f, err := fs.Create(tl, name)
	if err != nil {
		return err
	}
	if err := f.Append(tl, data); err != nil {
		f.Close(tl)
		return err
	}
	return f.Close(tl)
}

// Remove implements vfs.FS.
func (fs *FS) Remove(tl *vclock.Timeline, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	in, ok := fs.names[name]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	fs.unlinkLocked(name, in)
	return nil
}

// unlinkLocked records the namespace removal in the running
// transaction and drops the cached name. The inode object survives
// until the removal commits, because a crash before that resurrects
// the file.
func (fs *FS) unlinkLocked(name string, in *inode) {
	delete(fs.names, name)
	in.nlink--
	if in.nlink == 0 {
		// Dirty pages of a fully unlinked file are dropped, not
		// written back. While other hard links remain, the data stays
		// live and keeps flushing normally.
		fs.dirtyBytes -= in.dirty()
		in.persisted = in.data.Len()
	}
	fs.running.add(in)
	fs.running.ops = append(fs.running.ops, nsOp{kind: opRemove, name: name, ino: in.ino})
}

// Link adds newName as a second directory entry for oldName's inode —
// a POSIX hard link. Both names share the inode and its data extents;
// no data is copied and no writeback is triggered, so linking a large
// file costs only the metadata operation (this is what makes
// checkpoints zero-copy). An existing newName is replaced, as link(2)
// via rename-over would do. Durability of the new name follows the
// usual journal rules: it survives a crash only once the transaction
// carrying the namespace op commits.
func (fs *FS) Link(tl *vclock.Timeline, oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	in, ok := fs.names[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, oldName)
	}
	if tgt, ok := fs.names[newName]; ok {
		if tgt == in {
			return nil
		}
		fs.unlinkLocked(newName, tgt)
	}
	fs.names[newName] = in
	in.nlink++
	fs.running.add(in)
	fs.running.ops = append(fs.running.ops, nsOp{kind: opCreate, name: newName, ino: in.ino})
	return nil
}

// Rename implements vfs.FS.
func (fs *FS) Rename(tl *vclock.Timeline, oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	in, ok := fs.names[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, oldName)
	}
	if tgt, ok := fs.names[newName]; ok {
		fs.unlinkLocked(newName, tgt)
	}
	delete(fs.names, oldName)
	fs.names[newName] = in
	fs.running.add(in)
	fs.running.ops = append(fs.running.ops, nsOp{kind: opRename, name: oldName, newName: newName, ino: in.ino})
	return nil
}

// Exists implements vfs.FS.
func (fs *FS) Exists(tl *vclock.Timeline, name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	_, ok := fs.names[name]
	return ok
}

// List implements vfs.FS. Names are returned sorted for determinism.
func (fs *FS) List(tl *vclock.Timeline) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.charge(tl, 0)
	out := make([]string, 0, len(fs.names))
	for name := range fs.names {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Size implements vfs.FS.
func (fs *FS) Size(tl *vclock.Timeline, name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	in, ok := fs.names[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	return in.data.Len(), nil
}

// SyncDir implements vfs.FS: it synchronously commits the running
// transaction, persisting pending namespace operations, and counts as
// one sync (LevelDB fsyncs the directory after pointing CURRENT at a
// new manifest).
func (fs *FS) SyncDir(tl *vclock.Timeline) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enter(tl)
	fs.m.syncs.Inc()
	start := tl.Now()
	done := fs.commitLocked(start, true)
	stall := tl.WaitUntil(done)
	fs.m.syncStallNs.AddDuration(stall)
	if fs.trace != nil && stall > 0 {
		fs.trace.Span(obs.TidForeground, "stall", "stall.fsync", start, tl.Now(), obs.KV{K: "cause", V: "fsync"}, obs.KV{K: "target", V: "dir"})
	}
	return nil
}
