package ext4

import "sync"

// extentBytes is the allocation unit for file contents. Chunked
// storage keeps Append O(len(p)): a contiguous []byte would re-copy
// the whole file every time the runtime grows the slice, which
// dominated real-time profiles of compaction-heavy workloads (the
// simulated disk holds every sstable in memory).
const extentBytes = 256 << 10

// chunkPool recycles extent chunks between files. An LSM workload
// churns files constantly — every obsolete SSTable and rotated WAL
// frees its page cache — and without recycling that alone accounted
// for ~40% of all allocation in write benchmarks. Chunks are pooled as
// array pointers so Put/Get do not allocate slice headers.
var chunkPool = sync.Pool{New: func() any { return new([extentBytes]byte) }}

// getChunk returns an empty chunk with capacity extentBytes. Contents
// beyond len are garbage from a previous life; extents only ever reads
// below len, so that garbage is unobservable.
func getChunk() []byte { return chunkPool.Get().(*[extentBytes]byte)[:0] }

// putChunk recycles c. Callers must guarantee no reader can still
// observe c (extents.ReadAt copies out, so chunks have no external
// aliases; inode data is recycled only once unreachable by handles).
func putChunk(c []byte) {
	if cap(c) != extentBytes {
		return
	}
	chunkPool.Put((*[extentBytes]byte)(c[:extentBytes]))
}

// extents stores a file's contents as fixed-size chunks. Every chunk
// except the last is exactly extentBytes long.
type extents struct {
	chunks [][]byte
	size   int64
}

// Len returns the file size in bytes.
func (e *extents) Len() int64 { return e.size }

// Append adds p at the end of the file.
func (e *extents) Append(p []byte) {
	for len(p) > 0 {
		if len(e.chunks) == 0 || len(e.chunks[len(e.chunks)-1]) == extentBytes {
			e.chunks = append(e.chunks, getChunk())
		}
		tail := e.chunks[len(e.chunks)-1]
		n := extentBytes - len(tail)
		if n > len(p) {
			n = len(p)
		}
		e.chunks[len(e.chunks)-1] = append(tail, p[:n]...)
		p = p[n:]
		e.size += int64(n)
	}
}

// ReadAt copies up to len(p) bytes starting at off into p and reports
// how many were copied (0 at or past EOF; callers bound off).
func (e *extents) ReadAt(p []byte, off int64) int {
	n := 0
	for n < len(p) && off < e.size {
		c := e.chunks[off/extentBytes]
		m := copy(p[n:], c[off%extentBytes:])
		n += m
		off += int64(m)
	}
	return n
}

// readAtChunks copies like ReadAt from a chunk-table snapshot taken
// under the filesystem lock, for lock-free reads of resident data:
// chunks other than the last are immutable once full, and tail is the
// captured header of the last in-range chunk (the one element a
// concurrent Append rewrites). p must be bounded to the snapshot size.
func readAtChunks(chunks [][]byte, tail []byte, p []byte, off int64) {
	n := 0
	last := len(chunks) - 1
	for n < len(p) {
		i := int(off / extentBytes)
		c := chunks[i]
		if i == last {
			c = tail
		}
		m := copy(p[n:], c[off%extentBytes:])
		n += m
		off += int64(m)
	}
}

// Truncate discards contents beyond size (no-op when size >= Len).
func (e *extents) Truncate(size int64) {
	if size < 0 {
		size = 0
	}
	if size >= e.size {
		return
	}
	keep := int((size + extentBytes - 1) / extentBytes)
	for i := keep; i < len(e.chunks); i++ {
		putChunk(e.chunks[i])
		e.chunks[i] = nil
	}
	e.chunks = e.chunks[:keep]
	if keep > 0 {
		e.chunks[keep-1] = e.chunks[keep-1][:size-int64(keep-1)*extentBytes]
	}
	e.size = size
}

// Release recycles every chunk. Only valid once no reader can reach
// the file again (its unlink has committed and no handle is open).
func (e *extents) Release() {
	for i := range e.chunks {
		putChunk(e.chunks[i])
		e.chunks[i] = nil
	}
	e.chunks = e.chunks[:0]
	e.size = 0
}
