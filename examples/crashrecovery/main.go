// Crash recovery walkthrough: this example narrates NobLSM's crash
// consistency story end to end. It fills a store until major
// compactions have produced unsynced successor SSTables, cuts power
// while those successors are still uncommitted (the paper's dependency
// window), recovers, and shows that the recovered store serves every
// key that had reached an SSTable — while a volatile (all-syncs-off)
// store run through the same script loses its data.
package main

import (
	"fmt"
	"log"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/harness"
	"noblsm/internal/policy"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

const (
	fillOps   = 30_000
	valueSize = 1024
)

func main() {
	fmt.Println("=== NobLSM: crash in the middle of the dependency window ===")
	runScript(policy.NobLSM)
	fmt.Println()
	fmt.Println("=== Volatile LevelDB (no syncs anywhere): same crash ===")
	runScript(policy.Volatile)
}

func runScript(variant policy.Variant) {
	tl := vclock.NewTimeline(0)
	dev := ssd.New(ssd.PM883())
	opts := policy.MustOptions(variant, harness.ScaledOptions(fillOps, valueSize, harness.PaperTable64MB))
	// Match the journal commit cadence to the scaled run, as the
	// experiment harness does (a 5 s interval would span this whole
	// sub-second virtual workload).
	fsCfg := ext4.DefaultConfig()
	fsCfg.CommitInterval = opts.PollInterval
	fs := ext4.New(fsCfg, dev)
	db, err := engine.Open(tl, fs, opts)
	if err != nil {
		log.Fatal(err)
	}

	gen := dbbench.NewGenerator(dbbench.FillRandom, fillOps, 7)
	written := map[int64]bool{}
	var buf []byte
	for {
		k, done := gen.Next()
		if done {
			break
		}
		buf = dbbench.Value(buf, k, 0, valueSize)
		if err := db.Put(tl, dbbench.Key(k), buf); err != nil {
			log.Fatal(err)
		}
		written[k] = true
	}
	if tr := db.Tracker(); tr != nil {
		fmt.Printf("before crash: %v — shadow predecessors on disk awaiting commits\n", tr)
	}
	fmt.Printf("before crash: %d files durable, %d minor / %d major compactions, %d fsyncs\n",
		fs.DurableFileCount(), db.Stats().MinorCompactions, db.Stats().MajorCompactions, fs.Stats().Syncs)

	// Power cut: page cache and uncommitted journal transactions are
	// gone, exactly like `halt -f -p -n` in the paper's test.
	fs.Crash(tl.Now())
	fmt.Println("power cut!")

	db2, err := engine.Open(tl, fs, opts)
	if err != nil {
		fmt.Printf("after crash: store did not recover: %v\n", err)
		return
	}
	var survived, lost, corrupt int
	for k := range written {
		v, err := db2.Get(tl, dbbench.Key(k))
		if err != nil {
			lost++
			continue
		}
		buf = dbbench.Value(buf, k, 0, valueSize)
		if string(v) != string(buf) {
			corrupt++
			continue
		}
		survived++
	}
	fmt.Printf("after crash: %d keys intact, %d lost (unsynced WAL tail), %d corrupt, %d broken log records\n",
		survived, lost, corrupt, db2.WALDropsAtRecovery())
	switch {
	case corrupt > 0:
		fmt.Println("verdict: CORRUPTION — the consistency contract is broken")
	case variant == policy.Volatile:
		fmt.Println("verdict: volatile mode kept only what asynchronous commits happened to cover —")
		fmt.Println("         no guarantee anchors the WAL chain, so the loss window is unbounded")
	default:
		fmt.Println("verdict: every KV pair that reached an SSTable survived — the paper's guarantee")
	}
}
