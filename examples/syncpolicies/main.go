// Sync-policy comparison: the same random-write workload runs against
// LevelDB (sync everything), BoLT (one sync per compaction), NobLSM
// (one sync per KV pair, ever) and a volatile store (no syncs), and
// the example prints where the time went — device barriers, journal
// stalls, foreground waits — making the paper's mechanism visible.
package main

import (
	"fmt"
	"log"

	"noblsm/internal/dbbench"
	"noblsm/internal/harness"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

const (
	ops       = 40_000
	valueSize = 1024
)

func main() {
	fmt.Printf("fillrandom, %d ops × %dB values, one client thread\n\n", ops, valueSize)
	fmt.Printf("%-10s %10s %8s %12s %14s %14s %12s\n",
		"variant", "µs/op", "syncs", "synced", "barrier stall", "rotation wait", "async commits")
	base := harness.ScaledOptions(ops, valueSize, harness.PaperTable64MB)
	var leveldb float64
	for _, v := range []policy.Variant{policy.LevelDB, policy.BoLT, policy.NobLSM, policy.Volatile} {
		tl := vclock.NewTimeline(0)
		st, err := harness.NewStore(tl, v, base)
		if err != nil {
			log.Fatal(err)
		}
		res, err := harness.RunDBBench(st, tl.Now(), dbbench.FillRandom, ops, valueSize, 1, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.2f %8d %9.1f MB %14v %14v %12d\n",
			v, res.MicrosPerOp, res.Syncs, float64(res.BytesSynced)/(1<<20),
			res.FS.BarrierStall, res.Engine.RotationStall, res.FS.AsyncCommits)
		if v == policy.LevelDB {
			leveldb = res.MicrosPerOp
		} else {
			fmt.Printf("%-10s %9.1f%% less execution time than LevelDB\n", "", 100*(1-res.MicrosPerOp/leveldb))
		}
	}
	fmt.Println("\nThe paper reports NobLSM cutting fillrandom time by up to 47% versus")
	fmt.Println("LevelDB (Section 5.2) while issuing 84.9% fewer syncs (Table 1); the")
	fmt.Println("volatile store is the no-consistency upper bound of Section 3.")
}
