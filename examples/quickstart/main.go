// Quickstart: open a NobLSM store on the simulated SSD + ext4 stack,
// write and read a few keys, scan a range, and show how few fsyncs the
// workload needed compared to what stock LevelDB would issue.
package main

import (
	"fmt"
	"log"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/harness"
	"noblsm/internal/policy"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

func main() {
	// Provision the stack: a PM883-like SSD, ext4 in ordered mode
	// (with the paper's check_commit/is_committed syscalls), and a
	// NobLSM-configured engine. Everything below runs in virtual
	// time: tl is this thread's clock.
	tl := vclock.NewTimeline(0)
	dev := ssd.New(ssd.PM883())
	opts := policy.MustOptions(policy.NobLSM, harness.ScaledOptions(50_000, 1024, harness.PaperTable64MB))
	// Match the journal commit cadence to the scaled run, as the
	// experiment harness does (a 5 s interval would span this whole
	// sub-second virtual workload).
	fsCfg := ext4.DefaultConfig()
	fsCfg.CommitInterval = opts.PollInterval
	fs := ext4.New(fsCfg, dev)
	db, err := engine.Open(tl, fs, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Basic operations.
	must(db.Put(tl, []byte("greeting"), []byte("hello, NobLSM")))
	must(db.Put(tl, []byte("paper"), []byte("DAC 2022")))
	must(db.Delete(tl, []byte("paper")))
	v, err := db.Get(tl, []byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %q\n", v)
	if _, err := db.Get(tl, []byte("paper")); err == engine.ErrNotFound {
		fmt.Println("paper was deleted")
	}

	// Write enough data to drive real minor and major compactions
	// (keys scattered multiplicatively so memtable ranges overlap).
	var buf []byte
	for i := int64(0); i < 50_000; i++ {
		k := i * 2654435761 % 50_000
		buf = dbbench.Value(buf, k, 0, 1024)
		must(db.Put(tl, dbbench.Key(k), buf))
	}

	// Range scan.
	it, err := db.NewIterator(tl)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for it.Seek([]byte("0000000000010000")); it.Valid() && n < 3; it.Next() {
		fmt.Printf("scan: %s = %.16q...\n", it.Key(), it.Value())
		n++
	}

	// The point of NobLSM: the fill above ran its major compactions
	// without a single fsync. Only minor compactions (memtable → L0)
	// synced, once each.
	st := db.Stats()
	fsStats := fs.Stats()
	fmt.Printf("\nvirtual time elapsed:  %v\n", tl.Now())
	fmt.Printf("minor compactions:     %d\n", st.MinorCompactions)
	fmt.Printf("major compactions:     %d (+%d trivial moves)\n", st.MajorCompactions, st.TrivialMoves)
	fmt.Printf("fsyncs issued:         %d (= minor compactions: one sync per KV pair, ever)\n", fsStats.Syncs)
	fmt.Printf("async journal commits: %d\n", fsStats.AsyncCommits)
	fmt.Printf("tracker:               %v\n", db.Tracker())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
