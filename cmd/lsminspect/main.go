// Command lsminspect builds a store with a chosen variant, runs a
// fill, and dumps the resulting LSM-tree structure: level populations,
// file ranges, tracker state, and the filesystem's journal counters.
// It exists to make the simulation's internals inspectable — the level
// shapes, shadow retention, and sync accounting one would otherwise
// only see through aggregate benchmark numbers.
//
// Usage:
//
//	lsminspect -variant NobLSM -ops 30000
//	lsminspect -variant NobLSM -ops 30000 -props   # dump all DB properties
//	lsminspect -manifest                           # dump the manifest record stream
//	lsminspect -repair -corrupt manifest-flip      # damage the store, repair, reopen
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/harness"
	"noblsm/internal/keys"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/wal"
)

var (
	variantFlag = flag.String("variant", "NobLSM", "system to build (LevelDB, Volatile, NobLSM, BoLT, L2SM, HyperLevelDB, RocksDB, PebblesDB)")
	ops         = flag.Int64("ops", 30_000, "fillrandom operations")
	valueSize   = flag.Int("value", 1024, "value size in bytes")
	seed        = flag.Int64("seed", 42, "workload seed")
	propsFlag   = flag.Bool("props", false, "dump every DB property (noblsm.stats, noblsm.sstables, noblsm.tracker, noblsm.metrics) after the fill")
	maniFlag    = flag.Bool("manifest", false, "dump the MANIFEST record stream (offset, CRC status, decoded edit) and the tracker dependency table")
	repairFlag  = flag.Bool("repair", false, "close the store, apply -corrupt, run engine.Repair, and reopen")
	corruptFlag = flag.String("corrupt", "none", "damage to inject before -repair: none, manifest-delete, manifest-flip")
	ckptFlag    = flag.Bool("checkpoints", false, "take a checkpoint, keep writing so compactions supersede pinned tables, take a second checkpoint + incremental backup, and dump the live references")
)

func main() {
	flag.Parse()
	if *ops < 1 || *valueSize < 1 {
		fmt.Fprintln(os.Stderr, "-ops and -value must be positive")
		os.Exit(2)
	}
	v := policy.Variant(*variantFlag)
	tl := vclock.NewTimeline(0)
	st, err := harness.NewStore(tl, v, harness.ScaledOptions(*ops, *valueSize, harness.PaperTable64MB))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := harness.RunDBBench(st, tl.Now(), dbbench.FillRandom, *ops, *valueSize, 1, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s after fillrandom(%d × %dB): %.2f µs/op over %v virtual\n\n",
		v, *ops, *valueSize, res.MicrosPerOp, res.Elapsed)

	if *maniFlag {
		if err := dumpManifest(st, tl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *repairFlag {
		if err := runRepair(st, tl, *corruptFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *ckptFlag {
		if err := runCheckpoints(st, tl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *propsFlag {
		for _, name := range engine.PropertyNames {
			val, ok := st.DB.Property(name)
			if !ok {
				continue
			}
			fmt.Printf("=== %s ===\n%s\n", name, val)
		}
		return
	}

	// Per-level table: files, bytes, key range, and how many tables
	// the NobLSM tracker is shadow-protecting at each level.
	tracker := st.DB.Tracker()
	fmt.Println("LSM-tree structure:")
	fmt.Printf("  %-4s %6s %10s %7s %7s  %s\n", "Lvl", "Files", "Bytes", "Shadow", "Hot", "Key range")
	cur := st.DB.Version()
	for level := 0; level < version.NumLevels; level++ {
		files := cur.Files[level]
		if len(files) == 0 {
			continue
		}
		shadow, hotN := 0, 0
		var lo, hi []byte
		for _, f := range files {
			if f.Hot {
				hotN++
			}
			if tracker != nil && tracker.Protected(f.Number) {
				shadow++
			}
			if lo == nil || keys.CompareUser(f.SmallestUser(), lo) < 0 {
				lo = f.SmallestUser()
			}
			if hi == nil || keys.CompareUser(f.LargestUser(), hi) > 0 {
				hi = f.LargestUser()
			}
		}
		fmt.Printf("  L%-3d %6d %10d %7d %7d  %s .. %s\n", level, len(files),
			cur.TotalSize(level), shadow, hotN, trunc(lo), trunc(hi))
		max := 4
		for i, f := range files {
			if i == max {
				fmt.Printf("      ... %d more\n", len(files)-max)
				break
			}
			hot := ""
			if f.Hot {
				hot = " [hot]"
			}
			if tracker != nil && tracker.Protected(f.Number) {
				hot += " [shadow-protected]"
			}
			fmt.Printf("      #%-5d %7.2f KB  %s .. %s%s\n", f.Number,
				float64(f.Size)/1024,
				trunc(keys.UserKey(f.Smallest)), trunc(keys.UserKey(f.Largest)), hot)
		}
	}

	est := st.DB.Stats()
	fmt.Printf("\nengine: %d puts, %d minor / %d major compactions (+%d moves), %d seek-triggered\n",
		est.Puts, est.MinorCompactions, est.MajorCompactions, est.TrivialMoves, est.SeekCompactions)
	fmt.Printf("        compaction I/O: %.1f MB read, %.1f MB written (write amp %.1fx)\n",
		float64(est.CompactionBytesRead)/(1<<20), float64(est.CompactionBytesWritten)/(1<<20),
		float64(est.CompactionBytesWritten)/float64(*ops*int64(*valueSize)))
	fmt.Printf("        stalls: rotation %v, slowdown %v\n", est.RotationStall, est.SlowdownTime)

	fst := st.FS.Stats()
	fmt.Printf("ext4:   %d fsyncs (%.1f MB synced), %d async commits (%.1f MB), flusher %.1f MB\n",
		fst.Syncs, float64(fst.BytesSynced)/(1<<20), fst.AsyncCommits,
		float64(fst.BytesAsyncCommitted)/(1<<20), float64(fst.BytesFlushed)/(1<<20))

	if tr := st.DB.Tracker(); tr != nil {
		ts := tr.Stats()
		inv := tr.Inventory()
		fmt.Printf("tracker: %v — %d deps registered, %d resolved, %d predecessors reclaimed, %d polls\n",
			tr, ts.Registered, ts.Resolved, ts.PredsDeleted, ts.Polls)
		fmt.Printf("         %d shadow tables currently retained, %d deps pending\n",
			len(inv.Protected), len(inv.Deps))
	}
	fmt.Printf("latency: p50=%v p99=%v p99.9=%v max=%v\n",
		res.Latency.Percentile(50), res.Latency.Percentile(99),
		res.Latency.Percentile(99.9), res.Latency.Max())
}

// runCheckpoints demonstrates the checkpoint pin lifecycle: pin a
// checkpoint of the filled store, keep writing so compactions
// supersede pinned tables (turning them into GC-held files and, in
// NobLSM mode, shadow predecessors), pin a second checkpoint, take an
// incremental backup, and dump the noblsm.checkpoints property — the
// same view an operator gets from a live store.
func runCheckpoints(st *harness.Store, tl *vclock.Timeline) error {
	first, err := st.DB.Checkpoint(tl, "inspect-ckpt-1")
	if err != nil {
		return fmt.Errorf("first checkpoint: %w", err)
	}
	fmt.Printf("checkpoint %d: %d files (%d zero-copy links, %d bytes copied) at wal=%06d off=%d seq=%d\n",
		first.ID, len(first.Files), first.Linked, first.CopiedBytes,
		first.WALNumber, first.WALOff, first.LastSeq)

	// A second fill round overwrites the same keyspace, driving
	// compactions over the pinned tables.
	if _, err := harness.RunDBBench(st, tl.Now(), dbbench.FillRandom, *ops, *valueSize, 1, *seed+1); err != nil {
		return fmt.Errorf("second fill: %w", err)
	}
	second, err := st.DB.Checkpoint(tl, "inspect-ckpt-2")
	if err != nil {
		return fmt.Errorf("second checkpoint: %w", err)
	}
	fmt.Printf("checkpoint %d: %d files (%d zero-copy links, %d bytes copied) at wal=%06d off=%d seq=%d\n",
		second.ID, len(second.Files), second.Linked, second.CopiedBytes,
		second.WALNumber, second.WALOff, second.LastSeq)
	bk, err := st.DB.Backup(tl, "inspect-backup")
	if err != nil {
		return fmt.Errorf("backup: %w", err)
	}
	fmt.Printf("backup: %d tables linked, %d reused, %d pruned, %d bytes copied\n\n",
		bk.TablesLinked, bk.TablesReused, bk.Pruned, bk.CopiedBytes)

	val, _ := st.DB.Property("noblsm.checkpoints")
	fmt.Printf("=== noblsm.checkpoints ===\n%s", val)
	return nil
}

// dumpManifest renders the live MANIFEST's physical record stream —
// every entry with its offset, CRC status, and decoded version edit —
// followed by the tracker's dependency table. This is the forensic
// view Repair bases its decisions on.
func dumpManifest(st *harness.Store, tl *vclock.Timeline) error {
	cur, err := st.FS.ReadFile(tl, engine.CurrentName)
	if err != nil {
		return fmt.Errorf("reading CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(cur))
	data, err := st.FS.ReadFile(tl, name)
	if err != nil {
		return fmt.Errorf("reading %s: %w", name, err)
	}
	recs := wal.ScanRecords(data)
	fmt.Printf("%s: %d bytes, %d record-stream entries\n\n", name, len(data), len(recs))
	fmt.Printf("  %-8s %-8s %-7s  %s\n", "Offset", "Len", "CRC", "Edit")
	for _, r := range recs {
		if !r.Valid {
			fmt.Printf("  %-8d %-8d %-7s  (skipped damaged region)\n", r.Off, r.Len, "BAD")
			continue
		}
		edit, derr := version.DecodeEdit(r.Payload)
		if derr != nil {
			fmt.Printf("  %-8d %-8d %-7s  undecodable: %v\n", r.Off, r.Len, "ok", derr)
			continue
		}
		fmt.Printf("  %-8d %-8d %-7s  %s\n", r.Off, r.Len, "ok", editSummary(edit))
	}

	if tr := st.DB.Tracker(); tr != nil {
		inv := tr.Inventory()
		fmt.Printf("\ntracker dependency table: %d unresolved deps, %d shadow-retained predecessors\n",
			len(inv.Deps), len(inv.Protected))
		for i, d := range inv.Deps {
			fmt.Printf("  dep %-3d preds %v -> succs %v (%d inode commits outstanding)\n",
				i, d.Preds, d.Succs, d.WaitingSuccs)
		}
		if len(inv.Protected) > 0 {
			fmt.Printf("  protected: %v\n", inv.Protected)
		}
	}
	return nil
}

// editSummary compresses a version edit to one line.
func editSummary(e *version.VersionEdit) string {
	var parts []string
	if e.HasLogNumber {
		parts = append(parts, fmt.Sprintf("log=%d", e.LogNumber))
	}
	if e.HasNextFileNumber {
		parts = append(parts, fmt.Sprintf("next=%d", e.NextFileNumber))
	}
	if e.HasLastSeq {
		parts = append(parts, fmt.Sprintf("seq=%d", e.LastSeq))
	}
	for _, nf := range e.NewFiles {
		parts = append(parts, fmt.Sprintf("+L%d#%d(%dB)", nf.Level, nf.Meta.Number, nf.Meta.Size))
	}
	for _, df := range e.DeletedFiles {
		parts = append(parts, fmt.Sprintf("-L%d#%d", df.Level, df.Number))
	}
	if len(e.CompactPointers) > 0 {
		parts = append(parts, fmt.Sprintf("ptrs=%d", len(e.CompactPointers)))
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

// runRepair closes the filled store, injects the requested damage,
// runs the offline Repair, prints its report, and reopens the store
// to prove it serves.
func runRepair(st *harness.Store, tl *vclock.Timeline, corrupt string) error {
	if err := st.DB.Close(tl); err != nil {
		return fmt.Errorf("closing store: %w", err)
	}
	fs := st.FS
	switch corrupt {
	case "none":
	case "manifest-delete":
		for _, name := range fs.List(tl) {
			if kind, _, ok := engine.ParseFileName(name); ok &&
				(kind == engine.KindCurrent || kind == engine.KindManifest) {
				if err := fs.Remove(tl, name); err != nil {
					return err
				}
				fmt.Printf("injected: removed %s\n", name)
			}
		}
	case "manifest-flip":
		cur, err := fs.ReadFile(tl, engine.CurrentName)
		if err != nil {
			return err
		}
		name := strings.TrimSpace(string(cur))
		data, err := fs.ReadFile(tl, name)
		if err != nil {
			return err
		}
		recs := wal.ScanRecords(data)
		if len(recs) < 2 {
			return fmt.Errorf("%s has %d records; need at least 2 to corrupt the interior", name, len(recs))
		}
		// Record 1, payload byte 0 (offset +7 skips the CRC/len/type
		// header): interior damage when later records stay valid.
		off := int64(recs[1].Off) + 7
		if err := fs.CorruptAt(name, off); err != nil {
			return err
		}
		fmt.Printf("injected: flipped a bit at %s offset %d (record 1 payload)\n", name, off)
	default:
		return fmt.Errorf("unknown -corrupt mode %q", corrupt)
	}

	rep, err := engine.Repair(tl, fs, st.Opts)
	if err != nil {
		return fmt.Errorf("repair: %w", err)
	}
	fmt.Printf("\nrepair report:\n")
	fmt.Printf("  manifest:    %s (%d edits decoded)\n", rep.ManifestState, rep.EditsDecoded)
	fmt.Printf("  tables:      %d scanned, %d kept, %d superseded, %d condemned, %d quarantined\n",
		rep.TablesScanned, len(rep.Kept), len(rep.Superseded), len(rep.Condemned), len(rep.Quarantined))
	if len(rep.Quarantined) > 0 {
		fmt.Printf("  quarantined: %v (renamed *.corrupt)\n", rep.Quarantined)
	}
	if len(rep.Condemned) > 0 {
		fmt.Printf("  condemned:   %v (shadow predecessors serve instead)\n", rep.Condemned)
	}
	fmt.Printf("  logs:        %v retained for replay\n", rep.LogsRetained)
	fmt.Printf("  rebuilt:     MANIFEST-%06d, next file %d, last seq %d\n",
		rep.ManifestNumber, rep.NextFile, rep.LastSeq)

	db, err := engine.Open(tl, fs, st.Opts)
	if err != nil {
		return fmt.Errorf("reopen after repair: %w", err)
	}
	defer db.Close(tl)
	it, err := db.NewIterator(tl)
	if err != nil {
		return err
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		return fmt.Errorf("scan after repair: %w", err)
	}
	fmt.Printf("\nreopened: %d keys served after repair\n", n)
	return nil
}

func trunc(b []byte) string {
	s := string(b)
	if len(s) > 16 {
		return s[:16] + "…"
	}
	return s
}
