// Command lsminspect builds a store with a chosen variant, runs a
// fill, and dumps the resulting LSM-tree structure: level populations,
// file ranges, tracker state, and the filesystem's journal counters.
// It exists to make the simulation's internals inspectable — the level
// shapes, shadow retention, and sync accounting one would otherwise
// only see through aggregate benchmark numbers.
//
// Usage:
//
//	lsminspect -variant NobLSM -ops 30000
//	lsminspect -variant NobLSM -ops 30000 -props   # dump all DB properties
package main

import (
	"flag"
	"fmt"
	"os"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/harness"
	"noblsm/internal/keys"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

var (
	variantFlag = flag.String("variant", "NobLSM", "system to build (LevelDB, Volatile, NobLSM, BoLT, L2SM, HyperLevelDB, RocksDB, PebblesDB)")
	ops         = flag.Int64("ops", 30_000, "fillrandom operations")
	valueSize   = flag.Int("value", 1024, "value size in bytes")
	seed        = flag.Int64("seed", 42, "workload seed")
	propsFlag   = flag.Bool("props", false, "dump every DB property (noblsm.stats, noblsm.sstables, noblsm.tracker, noblsm.metrics) after the fill")
)

func main() {
	flag.Parse()
	if *ops < 1 || *valueSize < 1 {
		fmt.Fprintln(os.Stderr, "-ops and -value must be positive")
		os.Exit(2)
	}
	v := policy.Variant(*variantFlag)
	tl := vclock.NewTimeline(0)
	st, err := harness.NewStore(tl, v, harness.ScaledOptions(*ops, *valueSize, harness.PaperTable64MB))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := harness.RunDBBench(st, tl.Now(), dbbench.FillRandom, *ops, *valueSize, 1, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s after fillrandom(%d × %dB): %.2f µs/op over %v virtual\n\n",
		v, *ops, *valueSize, res.MicrosPerOp, res.Elapsed)

	if *propsFlag {
		for _, name := range engine.PropertyNames {
			val, ok := st.DB.Property(name)
			if !ok {
				continue
			}
			fmt.Printf("=== %s ===\n%s\n", name, val)
		}
		return
	}

	// Per-level table: files, bytes, key range, and how many tables
	// the NobLSM tracker is shadow-protecting at each level.
	tracker := st.DB.Tracker()
	fmt.Println("LSM-tree structure:")
	fmt.Printf("  %-4s %6s %10s %7s %7s  %s\n", "Lvl", "Files", "Bytes", "Shadow", "Hot", "Key range")
	cur := st.DB.Version()
	for level := 0; level < version.NumLevels; level++ {
		files := cur.Files[level]
		if len(files) == 0 {
			continue
		}
		shadow, hotN := 0, 0
		var lo, hi []byte
		for _, f := range files {
			if f.Hot {
				hotN++
			}
			if tracker != nil && tracker.Protected(f.Number) {
				shadow++
			}
			if lo == nil || keys.CompareUser(f.SmallestUser(), lo) < 0 {
				lo = f.SmallestUser()
			}
			if hi == nil || keys.CompareUser(f.LargestUser(), hi) > 0 {
				hi = f.LargestUser()
			}
		}
		fmt.Printf("  L%-3d %6d %10d %7d %7d  %s .. %s\n", level, len(files),
			cur.TotalSize(level), shadow, hotN, trunc(lo), trunc(hi))
		max := 4
		for i, f := range files {
			if i == max {
				fmt.Printf("      ... %d more\n", len(files)-max)
				break
			}
			hot := ""
			if f.Hot {
				hot = " [hot]"
			}
			if tracker != nil && tracker.Protected(f.Number) {
				hot += " [shadow-protected]"
			}
			fmt.Printf("      #%-5d %7.2f KB  %s .. %s%s\n", f.Number,
				float64(f.Size)/1024,
				trunc(keys.UserKey(f.Smallest)), trunc(keys.UserKey(f.Largest)), hot)
		}
	}

	est := st.DB.Stats()
	fmt.Printf("\nengine: %d puts, %d minor / %d major compactions (+%d moves), %d seek-triggered\n",
		est.Puts, est.MinorCompactions, est.MajorCompactions, est.TrivialMoves, est.SeekCompactions)
	fmt.Printf("        compaction I/O: %.1f MB read, %.1f MB written (write amp %.1fx)\n",
		float64(est.CompactionBytesRead)/(1<<20), float64(est.CompactionBytesWritten)/(1<<20),
		float64(est.CompactionBytesWritten)/float64(*ops*int64(*valueSize)))
	fmt.Printf("        stalls: rotation %v, slowdown %v\n", est.RotationStall, est.SlowdownTime)

	fst := st.FS.Stats()
	fmt.Printf("ext4:   %d fsyncs (%.1f MB synced), %d async commits (%.1f MB), flusher %.1f MB\n",
		fst.Syncs, float64(fst.BytesSynced)/(1<<20), fst.AsyncCommits,
		float64(fst.BytesAsyncCommitted)/(1<<20), float64(fst.BytesFlushed)/(1<<20))

	if tr := st.DB.Tracker(); tr != nil {
		ts := tr.Stats()
		inv := tr.Inventory()
		fmt.Printf("tracker: %v — %d deps registered, %d resolved, %d predecessors reclaimed, %d polls\n",
			tr, ts.Registered, ts.Resolved, ts.PredsDeleted, ts.Polls)
		fmt.Printf("         %d shadow tables currently retained, %d deps pending\n",
			len(inv.Protected), len(inv.Deps))
	}
	fmt.Printf("latency: p50=%v p99=%v p99.9=%v max=%v\n",
		res.Latency.Percentile(50), res.Latency.Percentile(99),
		res.Latency.Percentile(99.9), res.Latency.Max())
}

func trunc(b []byte) string {
	s := string(b)
	if len(s) > 16 {
		return s[:16] + "…"
	}
	return s
}
