// Command crashtest reproduces the paper's consistency test (Section
// 5.2): it emulates `halt -f -p -n` — a sudden power cut without
// flushing dirty blocks — in the middle of a fillrandom run, reopens
// the store, and verifies the paper's claim: KV pairs stored in
// SSTables are intact, while some records in the (unsynced) logs are
// broken. The test repeats three times per system, as in the paper.
//
// Usage:
//
//	crashtest                     # LevelDB and NobLSM, 3 trials each
//	crashtest -variant Volatile   # show what no syncs at all loses
package main

import (
	"flag"
	"fmt"
	"os"

	"noblsm/internal/harness"
	"noblsm/internal/policy"
)

var (
	variantFlag = flag.String("variant", "", "test a single variant (default: LevelDB and NobLSM)")
	ops         = flag.Int64("ops", 50_000, "fill size (paper: 10M)")
	trials      = flag.Int("trials", 3, "power-cut repetitions (paper: 3)")
	seed        = flag.Int64("seed", 42, "workload seed")
)

func main() {
	flag.Parse()
	if *ops < 1 || *trials < 1 {
		fmt.Fprintln(os.Stderr, "-ops and -trials must be positive")
		os.Exit(2)
	}
	variants := []policy.Variant{policy.LevelDB, policy.NobLSM}
	if *variantFlag != "" {
		variants = []policy.Variant{policy.Variant(*variantFlag)}
	}
	fmt.Println("\nConsistency test: sudden power-off during fillrandom (halt -f -p -n)")
	failed := false
	for _, v := range variants {
		for trial := 0; trial < *trials; trial++ {
			cut := *ops * int64(trial+2) / int64(*trials+2)
			res, err := harness.RunConsistencyTest(v, *ops, 1024, cut, *seed+int64(trial))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			verdict := "OK: SSTables intact"
			if !res.Recovered {
				verdict = "FAILED: store did not recover"
				failed = true
			} else if !res.SSTablesIntact {
				verdict = "FAILED: SSTable corruption"
				failed = true
			}
			fmt.Printf("%-10s trial %d: cut@%-7d survived=%-7d lost(log tail)=%-5d brokenLogRecords=%-3d %s\n",
				v, trial+1, cut, res.KeysSurvived, res.KeysLost, res.WALRecordsDropped, verdict)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nAll trials: KV pairs stored in SSTables are intact; only unsynced")
	fmt.Println("log-tail records may be lost — the same consistency as conventional")
	fmt.Println("LSM-trees (paper Section 5.2).")
}
