// Command noblsm-server runs noblsm's multi-shard network front-end:
// N fully independent DB shards (each with its own simulated SSD,
// ext4 journal, WAL, memtable and compaction pipeline) behind a
// consistent-hash router, speaking the wire protocol over TCP with
// per-connection pipelining.
//
// Usage:
//
//	noblsm-server -shards 8 -listen :4400
//	noblsm-server -shards 8 -listen :4400 -metrics :8080   # /metrics /stats /doctor
//	noblsm-server -variant LevelDB                          # any paper variant
//	noblsm-server -governor -stall-deadline 2ms             # admission control + fail-fast sheds
//
// The metrics endpoint aggregates across shards: /metrics sums
// counters and merges latency distributions over every shard's
// registry, /stats adds per-shard sections, /doctor renders one
// health report per shard. SIGINT/SIGTERM shut down gracefully:
// stop accepting, sever connections, drain in-flight requests, close
// every shard's engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"noblsm/internal/harness"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/server"
	"noblsm/internal/vclock"
)

var (
	shards  = flag.Int("shards", 8, "number of independent DB shards")
	listen  = flag.String("listen", ":4400", "TCP address to serve the wire protocol on")
	metrics = flag.String("metrics", "", "serve aggregated /metrics, /stats, /doctor on this HTTP address, e.g. :8080")
	variant = flag.String("variant", string(policy.NobLSM), "engine policy for every shard (LevelDB, NobLSM, BoLT, ...)")
	ops     = flag.Int64("ops", 1_000_000, "expected workload size; sizes each shard's scaled engine geometry")
	value   = flag.Int("value", 1024, "expected value size; sizes each shard's scaled engine geometry")
	seed    = flag.Int64("seed", 1, "base seed; each shard perturbs it")

	governed = flag.Bool("governor", false, "enable each shard's admission governor: smooth pacing instead of the write-stall cliff")
	deadline = flag.Duration("stall-deadline", 0, "with -governor, fail writes whose implied wait exceeds this (virtual) budget with a retryable busy status; 0 blocks until room")
)

func main() {
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "-shards must be positive")
		os.Exit(2)
	}
	base := harness.ScaledOptions(*ops, *value, harness.PaperTable64MB)
	base.Seed = *seed
	if *governed {
		base.GovernorEnabled = true
		base.WriteStallDeadline = vclock.Duration(*deadline)
	} else if *deadline != 0 {
		fmt.Fprintln(os.Stderr, "-stall-deadline requires -governor")
		os.Exit(2)
	}
	srv, err := server.New(server.Options{
		Shards:  *shards,
		Variant: policy.Variant(*variant),
		Engine:  base,
		Device:  harness.ScaledDevice(base),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("noblsm-server: %d %s shard(s) on %s\n", *shards, *variant, addr)

	if *metrics != "" {
		msrv, maddr, err := obs.Serve(*metrics, srv.Exposition())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			srv.Close()
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("noblsm-server: metrics on http://%s/\n", maddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("noblsm-server: %s — draining and closing shards\n", got)
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
