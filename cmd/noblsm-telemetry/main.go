// Command noblsm-telemetry is a console client for the live telemetry
// plane a benchmark serves with -listen: it polls /stats (and
// optionally /doctor) on a running dbbench or ycsbbench process and
// renders the windowed tail-latency series and the stall ledger as an
// aligned table.
//
// Usage:
//
//	dbbench -run overwrite -ops 2000000 -listen :8080 &
//	noblsm-telemetry -target http://localhost:8080           # one shot
//	noblsm-telemetry -target http://localhost:8080 -watch 2s # poll
//	noblsm-telemetry -target http://localhost:8080 -doctor   # health report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"noblsm/internal/obs"
)

var (
	target  = flag.String("target", "http://localhost:8080", "base URL of a benchmark's -listen endpoint")
	watch   = flag.Duration("watch", 0, "poll interval (0: one shot)")
	doctor  = flag.Bool("doctor", false, "fetch the /doctor health report instead of /stats")
	windows = flag.Int("windows", 10, "most recent time-series windows to show")
)

// stats mirrors the /stats payload's telemetry sections (the full
// registry snapshot is skipped — /metrics serves it).
type stats struct {
	SeriesIntervalNs int64            `json:"series_interval_ns"`
	Windows          []obs.WindowStat `json:"windows"`
	CurrentWindow    *obs.WindowStat  `json:"current_window"`
	DroppedWindows   uint64           `json:"dropped_windows"`
	Stalls           map[string]struct {
		Count   int64 `json:"count"`
		TotalNs int64 `json:"total_ns"`
		MaxNs   int64 `json:"max_ns"`
	} `json:"stalls"`
	TraceDropped map[string]uint64 `json:"trace_dropped"`
}

func fetch(path string) ([]byte, error) {
	resp, err := http.Get(*target + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s%s: %s: %s", *target, path, resp.Status, body)
	}
	return body, nil
}

func show() error {
	if *doctor {
		body, err := fetch("/doctor")
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		return nil
	}
	body, err := fetch("/stats")
	if err != nil {
		return err
	}
	var s stats
	if err := json.Unmarshal(body, &s); err != nil {
		return fmt.Errorf("decoding /stats: %w", err)
	}
	ws := s.Windows
	if *windows > 0 && len(ws) > *windows {
		ws = ws[len(ws)-*windows:]
	}
	if s.CurrentWindow != nil {
		ws = append(ws, *s.CurrentWindow)
	}
	if len(ws) == 0 {
		fmt.Println("(no telemetry windows yet — was the benchmark started with -listen and telemetry on?)")
	} else {
		fmt.Printf("window     ops     p50µs     p99µs    p999µs     maxµs  stalls  max-stall\n")
		for _, w := range ws {
			fmt.Printf("%6d  %6d  %8.1f  %8.1f  %8.1f  %8.1f  %6d  %9.1fµs\n",
				w.Index, w.Ops, w.P50Us, w.P99Us, w.P999Us, w.MaxUs, w.Stalls, w.MaxStallUs)
		}
		if s.DroppedWindows > 0 {
			fmt.Printf("(%d older windows overwritten by the ring)\n", s.DroppedWindows)
		}
	}
	if len(s.Stalls) > 0 {
		names := make([]string, 0, len(s.Stalls))
		for name := range s.Stalls {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			return s.Stalls[names[i]].TotalNs > s.Stalls[names[j]].TotalNs
		})
		fmt.Printf("\nstall ledger:\n")
		for _, name := range names {
			st := s.Stalls[name]
			fmt.Printf("  %-20s count=%-8d total=%-12v max=%v\n", name, st.Count,
				time.Duration(st.TotalNs), time.Duration(st.MaxNs))
		}
	}
	for name, dropped := range s.TraceDropped {
		fmt.Printf("\ntrace ring %q dropped %d events (oldest-first)\n", name, dropped)
	}
	return nil
}

func main() {
	flag.Parse()
	for {
		if err := show(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if *watch == 0 {
				os.Exit(1)
			}
		}
		if *watch == 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}
