// Command noblsm-telemetry is a console client for the live telemetry
// plane a benchmark serves with -listen: it polls /stats (and
// optionally /doctor) on a running dbbench or ycsbbench process and
// renders the windowed tail-latency series and the stall ledger as an
// aligned table.
//
// Usage:
//
//	dbbench -run overwrite -ops 2000000 -listen :8080 &
//	noblsm-telemetry -target http://localhost:8080           # one shot
//	noblsm-telemetry -target http://localhost:8080 -watch 2s # poll
//	noblsm-telemetry -target http://localhost:8080 -doctor   # health report
//	noblsm-telemetry -target http://localhost:8080 -wait 30s # retry until up
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"noblsm/internal/obs"
)

var (
	target  = flag.String("target", "http://localhost:8080", "base URL of a benchmark's -listen endpoint")
	watch   = flag.Duration("watch", 0, "poll interval (0: one shot)")
	doctor  = flag.Bool("doctor", false, "fetch the /doctor health report instead of /stats")
	ckpt    = flag.Bool("ckpt", false, "show the checkpoint/backup/replication gauges (engine.ckpt.*, engine.replica.*) instead of /stats")
	gov     = flag.Bool("governor", false, "show the admission-governor gauges (engine.governor.*) and the admission stall causes instead of /stats")
	windows = flag.Int("windows", 10, "most recent time-series windows to show")
	wait    = flag.Duration("wait", 0, "keep retrying a refused/unreachable target for this long before giving up (e.g. 30s while the benchmark starts)")
)

// stats mirrors the /stats payload's telemetry sections (the full
// registry snapshot is skipped — /metrics serves it).
type stats struct {
	SeriesIntervalNs int64            `json:"series_interval_ns"`
	Windows          []obs.WindowStat `json:"windows"`
	CurrentWindow    *obs.WindowStat  `json:"current_window"`
	DroppedWindows   uint64           `json:"dropped_windows"`
	Stalls           map[string]struct {
		Count   int64 `json:"count"`
		TotalNs int64 `json:"total_ns"`
		MaxNs   int64 `json:"max_ns"`
	} `json:"stalls"`
	TraceDropped map[string]uint64 `json:"trace_dropped"`
}

func fetch(path string) ([]byte, error) {
	resp, err := http.Get(*target + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s%s: %s: %s", *target, path, resp.Status, body)
	}
	return body, nil
}

func show() error {
	if *doctor {
		body, err := fetch("/doctor")
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		return nil
	}
	if *ckpt {
		return showCkpt()
	}
	if *gov {
		return showGovernor()
	}
	body, err := fetch("/stats")
	if err != nil {
		return err
	}
	var s stats
	if err := json.Unmarshal(body, &s); err != nil {
		return fmt.Errorf("decoding /stats: %w", err)
	}
	ws := s.Windows
	if *windows > 0 && len(ws) > *windows {
		ws = ws[len(ws)-*windows:]
	}
	if s.CurrentWindow != nil {
		ws = append(ws, *s.CurrentWindow)
	}
	if len(ws) == 0 {
		fmt.Println("(no telemetry windows yet — was the benchmark started with -listen and telemetry on?)")
	} else {
		fmt.Printf("window     ops     p50µs     p99µs    p999µs     maxµs  stalls  max-stall\n")
		for _, w := range ws {
			fmt.Printf("%6d  %6d  %8.1f  %8.1f  %8.1f  %8.1f  %6d  %9.1fµs\n",
				w.Index, w.Ops, w.P50Us, w.P99Us, w.P999Us, w.MaxUs, w.Stalls, w.MaxStallUs)
		}
		if s.DroppedWindows > 0 {
			fmt.Printf("(%d older windows overwritten by the ring)\n", s.DroppedWindows)
		}
	}
	if len(s.Stalls) > 0 {
		names := make([]string, 0, len(s.Stalls))
		for name := range s.Stalls {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			return s.Stalls[names[i]].TotalNs > s.Stalls[names[j]].TotalNs
		})
		fmt.Printf("\nstall ledger:\n")
		for _, name := range names {
			st := s.Stalls[name]
			fmt.Printf("  %-20s count=%-8d total=%-12v max=%v\n", name, st.Count,
				time.Duration(st.TotalNs), time.Duration(st.MaxNs))
		}
	}
	for name, dropped := range s.TraceDropped {
		fmt.Printf("\ntrace ring %q dropped %d events (oldest-first)\n", name, dropped)
	}
	return nil
}

// showCkpt renders the checkpoint/backup/replication slice of the
// /metrics page: live pins and retained bytes (why GC is holding
// files), backup recency, and the replication apply watermarks.
func showCkpt() error {
	body, err := fetch("/metrics")
	if err != nil {
		return err
	}
	// Well-known gauges get a gloss; everything else in the families
	// prints as-is so new engine counters surface without a client
	// update.
	gloss := map[string]string{
		"engine.ckpt.active":            "live checkpoint references",
		"engine.ckpt.pinned_files":      "files GC is holding for checkpoints",
		"engine.ckpt.retained_bytes":    "bytes retained beyond the live version",
		"engine.ckpt.last_backup_at_ns": "virtual time of the last backup",
		"engine.ckpt.last_backup_seq":   "sequence number the last backup captured",
		"engine.replica.applied_seq":    "replication apply watermark",
	}
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] == "#" {
			continue
		}
		name := ckptMetricName(fields[0])
		if name == "" {
			continue
		}
		found = true
		val := fields[len(fields)-1]
		if g, ok := gloss[name]; ok {
			fmt.Printf("%-36s %-14s %s\n", name, val, g)
		} else {
			fmt.Printf("%-36s %s\n", name, val)
		}
	}
	if !found {
		fmt.Println("(no engine.ckpt.* / engine.replica.* metrics — is this a store without checkpoint activity?)")
	}
	return nil
}

// showGovernor renders the admission-governor slice of /metrics: the
// control loop's live gauges (admitted rate vs measured drain, bucket
// level, debt and flush lag) plus its cumulative counters and the two
// admission stall causes from the ledger.
func showGovernor() error {
	body, err := fetch("/metrics")
	if err != nil {
		return err
	}
	gloss := map[string]string{
		"engine.governor.enabled":              "1 when the admission governor is on",
		"engine.governor.rate_bytes_per_sec":   "current admitted write rate",
		"engine.governor.drain_bytes_per_sec":  "measured background drain rate",
		"engine.governor.tokens_bytes":         "token-bucket level (negative: prepaid deficit)",
		"engine.governor.debt_bytes":           "L0 + parked-memtable bytes behind the writers",
		"engine.governor.l0_files":             "leveled L0 file count (the ramp input)",
		"engine.governor.flush_lag_ns":         "how far the flush horizon leads the writers",
		"engine.governor.admitted_bytes":       "bytes admitted through the bucket",
		"engine.governor.paced_writes":         "writes that paid a pacing delay",
		"engine.governor.pacing_ns":            "total pacing delay charged",
		"engine.governor.rejected_writes":      "writes shed at the stall deadline",
		"engine.governor.l0_preempts":          "background picks preempted toward L0",
		"engine.stall.admission_pacing.count":  "pacing stalls in the ledger",
		"engine.stall.admission_pacing.ns":     "total pacing stall time",
		"engine.stall.admission_pacing.max_ns": "largest single pacing stall",
		"engine.stall.write_stalled.count":     "deadline fail-fast stalls",
		"engine.stall.write_stalled.ns":        "total deadline-bounded stall time",
		"engine.stall.write_stalled.max_ns":    "largest deadline-bounded stall",
	}
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] == "#" {
			continue
		}
		name := governorMetricName(fields[0])
		if name == "" {
			continue
		}
		found = true
		val := fields[len(fields)-1]
		if g, ok := gloss[name]; ok {
			fmt.Printf("%-38s %-14s %s\n", name, val, g)
		} else {
			fmt.Printf("%-38s %s\n", name, val)
		}
	}
	if !found {
		fmt.Println("(no engine.governor.* metrics — was the store opened with the governor enabled?)")
	}
	return nil
}

// governorMetricName maps an exposition line's metric name back to the
// registry's dotted form for the governor family and the two admission
// stall causes; "" for everything else.
func governorMetricName(wire string) string {
	if strings.HasPrefix(wire, "engine.governor.") ||
		strings.HasPrefix(wire, "engine.stall.admission_pacing.") ||
		strings.HasPrefix(wire, "engine.stall.write_stalled.") {
		return wire
	}
	if rest, ok := strings.CutPrefix(wire, "noblsm_engine_governor_"); ok {
		return "engine.governor." + rest
	}
	for _, cause := range []string{"admission_pacing", "write_stalled"} {
		if rest, ok := strings.CutPrefix(wire, "noblsm_engine_stall_"+cause+"_"); ok {
			return "engine.stall." + cause + "." + rest
		}
	}
	return ""
}

// ckptMetricName maps an exposition line's metric name back to the
// registry's dotted form ("noblsm_engine_ckpt_retained_bytes" →
// "engine.ckpt.retained_bytes"), accepting the raw dotted form too.
// It returns "" for metrics outside the checkpoint/replication
// families.
func ckptMetricName(wire string) string {
	if strings.HasPrefix(wire, "engine.ckpt.") || strings.HasPrefix(wire, "engine.replica.") {
		return wire
	}
	if rest, ok := strings.CutPrefix(wire, "noblsm_engine_ckpt_"); ok {
		return "engine.ckpt." + rest
	}
	if rest, ok := strings.CutPrefix(wire, "noblsm_engine_replica_"); ok {
		return "engine.replica." + rest
	}
	return ""
}

// isConnectionError reports whether err is the target simply not
// being there (refused, unreachable, DNS failure) as opposed to a
// protocol or payload problem.
func isConnectionError(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) {
		err = ue.Err
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// explain turns a bare connection error into an actionable message.
func explain(err error) string {
	if isConnectionError(err) {
		return fmt.Sprintf("cannot reach %s: %v\n"+
			"  is the benchmark running with -listen, or noblsm-server with -metrics?\n"+
			"  (use -wait 30s to retry while it starts)", *target, err)
	}
	return err.Error()
}

// waitForTarget retries the target with exponential backoff until it
// answers or the -wait budget runs out.
func waitForTarget(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	backoff := 100 * time.Millisecond
	for {
		err := show()
		if err == nil {
			return nil
		}
		if !isConnectionError(err) || time.Now().After(deadline) {
			return err
		}
		fmt.Fprintf(os.Stderr, "waiting for %s (%v left): %v\n",
			*target, time.Until(deadline).Round(time.Second), err)
		time.Sleep(backoff)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

func main() {
	flag.Parse()
	first := true
	for {
		var err error
		if first && *wait > 0 {
			err = waitForTarget(*wait)
		} else {
			err = show()
		}
		first = false
		if err != nil {
			fmt.Fprintln(os.Stderr, explain(err))
			if *watch == 0 {
				os.Exit(1)
			}
		}
		if *watch == 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}
