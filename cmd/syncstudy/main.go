// Command syncstudy regenerates Figure 2a: the cost of the three write
// strategies — Async (buffered), Direct (O_DIRECT) and Sync (buffered
// + fsync per file) — writing 2 MB files to the simulated PM883 SSD
// mounted with the ext4 ordered-mode journaling model.
//
// Usage:
//
//	syncstudy                    # 256 MB and 512 MB (scaled 4/8 GB)
//	syncstudy -sizes 4096,8192   # the paper's own sizes, in MB
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

import "noblsm/internal/harness"

var (
	sizesFlag = flag.String("sizes", "256,512", "total write sizes in MB (paper: 4096,8192)")
	fileMB    = flag.Int64("file", 2, "file size in MB (paper: 2, LevelDB's default SSTable)")
)

func main() {
	flag.Parse()
	var sizes []int64
	for _, p := range strings.Split(*sizesFlag, ",") {
		mb, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || mb <= 0 {
			fmt.Fprintf(os.Stderr, "bad -sizes %q\n", *sizesFlag)
			os.Exit(2)
		}
		sizes = append(sizes, mb<<20)
	}
	if *fileMB < 1 {
		fmt.Fprintln(os.Stderr, "-file must be positive")
		os.Exit(2)
	}
	fmt.Println("\nFigure 2a: execution time of Async, Direct and Sync writes")
	fmt.Printf("%-10s", "Strategy")
	for _, total := range sizes {
		fmt.Printf("%10dMB", total>>20)
	}
	fmt.Println()
	table := map[string][]float64{}
	var order []string
	for _, total := range sizes {
		for _, row := range harness.RunFig2a(total, *fileMB<<20) {
			if _, seen := table[row.Strategy]; !seen {
				order = append(order, row.Strategy)
			}
			table[row.Strategy] = append(table[row.Strategy], row.Elapsed.Seconds())
		}
	}
	for _, s := range order {
		fmt.Printf("%-10s", s)
		for _, secs := range table[s] {
			fmt.Printf("%11.2fs", secs)
		}
		fmt.Println()
	}
	fmt.Println("\n(paper, 4GB/8GB on PM883: Async 0.83/1.72s, Direct 8.18/16.42s, Sync 10.06/22.44s)")
}
