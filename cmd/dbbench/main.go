// Command dbbench regenerates the paper's micro-benchmark results:
// Figures 4a–4d (db_bench across seven LSM-tree variants and value
// sizes 256 B–4 KB), Table 1 (sync counts), and Figure 2b (SSTable
// size × sync impact).
//
// Usage:
//
//	dbbench -fig 4a            # one figure: 4a|4b|4c|4d
//	dbbench -fig 4             # all four db_bench figures
//	dbbench -table 1           # Table 1
//	dbbench -fig 2b            # Figure 2b
//	dbbench -ops 100000        # scale (paper: 10000000)
//
// Observed single-workload runs emit machine-readable metrics and a
// Chrome trace_event file (open in chrome://tracing or Perfetto):
//
//	dbbench -run fillrandom -metrics-json run.json -trace run.trace.json
//
// Observed runs can arm the fault-injection plane to watch the engine
// absorb I/O errors (retries, self-healing reads, read-only fallback):
//
//	dbbench -run readrandom -faults "class=table,op=read,kind=error,transient,p=0.001"
//
// Results are printed as aligned tables with one row per series point,
// in the same units as the paper (µs per operation); latency
// percentiles (p50/p99/max) accompany every measured workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"noblsm/internal/dbbench"
	"noblsm/internal/harness"
	"noblsm/internal/histogram"
	"noblsm/internal/policy"
)

var (
	figFlag    = flag.String("fig", "", "figure to regenerate: 2b, 4, 4a, 4b, 4c or 4d")
	tableFlag  = flag.Int("table", 0, "table to regenerate (1)")
	opsFlag    = flag.Int64("ops", 100_000, "requests per workload (paper: 10M)")
	threads    = flag.Int("threads", 1, "client threads")
	seed       = flag.Int64("seed", 42, "workload seed")
	valuesFlag = flag.String("values", "256,512,1024,2048,4096", "value sizes for figure 4")

	runFlag      = flag.String("run", "", "observed run of one workload across variants: fillseq|fillrandom|overwrite|readseq|readrandom")
	benchJSON    = flag.String("bench-json", "", "run the performance-trajectory suite (real-time concurrent throughput + Fig 4a/5b virtual micro-runs) and write a JSON snapshot to this path")
	compactJSON  = flag.String("compaction-bench-json", "", "run the compaction-bound overwrite benchmark (small scaled tables, AsyncCompaction, sharded majors) and write a JSON snapshot to this path")
	subcompFlag  = flag.Int("subcompactions", 4, "CompactionSubcompactions for -compaction-bench-json")
	baselineOps  = flag.Float64("baseline-ops-per-sec", 0, "recorded before-build ops/sec for -compaction-bench-json (0: omit the comparison)")
	baselineNote = flag.String("baseline-note", "", "provenance note for -baseline-ops-per-sec (commit, driver settings)")
	metricsJSON  = flag.String("metrics-json", "", "write per-variant run metrics (throughput, latency percentiles, stall causes, compaction bytes, full registry) as JSON")
	traceFlag    = flag.String("trace", "", "write a Chrome trace_event file of the run (load in Perfetto)")
	variantsFlag = flag.String("variants", "", "comma-separated variant subset for -run (default: all)")
	faultsFlag   = flag.String("faults", "", "arm the fault-injection plane for -run, e.g. \"class=table,op=read,kind=error,transient,p=0.001;class=wal,op=write,kind=short,count=1\" (see internal/vfs.ParseFaultSpec)")

	telemetryFlag = flag.Bool("telemetry", false, "enable per-op latency attribution, the stall ledger and the windowed time-series for -run (implied by -listen)")
	listenFlag    = flag.String("listen", "", "serve live telemetry (/metrics, /stats, /trace, /doctor, /debug/pprof) on this address while -run executes, e.g. :8080 (:0 picks a port)")
	stabilityJSON = flag.String("stability-json", "", "run the long-run overwrite stability benchmark with telemetry on and write a JSON snapshot (mean ops/s, p99/p999, max stall, per-window series) to this path")
	readJSON      = flag.String("read-bench-json", "", "run the read-path benchmark (compression + compressed cache + readahead + per-level bloom, baseline vs tuned, and multiget16 vs get) and write a JSON snapshot to this path")
	ckptJSON      = flag.String("ckpt-bench-json", "", "run the checkpoint benchmark (Checkpoint latency at GB-scale store marks, fillrandom overhead of a checkpoint+backup loop gated at ≤5%) and write a JSON snapshot to this path")
	ckptGB        = flag.String("ckpt-gb", "1,4,8", "ascending GB marks for the -ckpt-bench-json scale sweep")
	governorJSON  = flag.String("governor-bench-json", "", "run the admission-governor stability comparison (overwrite with governor off vs on; gates ≥10× worst-stall reduction at ≤5% mean-throughput cost) and write BENCH_PR10-style JSON to this path")
	governorFlag  = flag.Bool("governor", false, "enable the admission governor for -run/-stability-json stores")
)

func main() {
	flag.Parse()
	if *runFlag == "" && (*metricsJSON != "" || *traceFlag != "") && *figFlag == "" && *tableFlag == 0 {
		// -metrics-json/-trace without an explicit mode implies an
		// observed fillrandom run.
		*runFlag = dbbench.FillRandom
	}
	if *figFlag == "" && *tableFlag == 0 && *runFlag == "" && *benchJSON == "" &&
		*compactJSON == "" && *stabilityJSON == "" && *readJSON == "" && *ckptJSON == "" &&
		*governorJSON == "" {
		fmt.Fprintln(os.Stderr, "specify -fig, -table, -run, -bench-json, -compaction-bench-json, -stability-json, -read-bench-json, -ckpt-bench-json or -governor-bench-json; see -help")
		os.Exit(2)
	}
	if *opsFlag < 1 || *threads < 1 {
		fmt.Fprintln(os.Stderr, "-ops and -threads must be positive")
		os.Exit(2)
	}
	switch {
	case *governorJSON != "":
		runGovernorBench(*governorJSON)
	case *ckptJSON != "":
		runCkptBench(*ckptJSON)
	case *readJSON != "":
		runReadBench(*readJSON)
	case *compactJSON != "":
		runCompactionBench(*compactJSON)
	case *benchJSON != "":
		runBenchJSON(*benchJSON)
	case *stabilityJSON != "":
		runStability(*stabilityJSON)
	case *runFlag != "":
		runObserved(*runFlag)
	case *tableFlag == 1:
		runTable1()
	case *figFlag == "2b":
		runFig2b()
	case *figFlag == "4":
		runFig4All()
	case *figFlag == "4a":
		runFig4(dbbench.FillRandom)
	case *figFlag == "4b":
		runFig4(dbbench.Overwrite)
	case *figFlag == "4c":
		runFig4(dbbench.ReadSeq)
	case *figFlag == "4d":
		runFig4(dbbench.ReadRandom)
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q / -table %d\n", *figFlag, *tableFlag)
		os.Exit(2)
	}
}

func valueSizes() []int {
	var out []int
	for _, part := range strings.Split(*valuesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad -values %q\n", *valuesFlag)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

var figOf = map[string]string{
	dbbench.FillRandom: "4a", dbbench.Overwrite: "4b",
	dbbench.ReadSeq: "4c", dbbench.ReadRandom: "4d",
}

// fig4Cell is one (workload, variant, size) measurement: the mean the
// paper plots plus the latency distribution behind it.
type fig4Cell struct {
	microsPerOp float64
	latency     histogram.Histogram
}

// collectFig4 runs the value-size sweep once and groups results by
// workload → variant → size.
func collectFig4(sizes []int) map[string]map[policy.Variant]map[int]fig4Cell {
	results := map[string]map[policy.Variant]map[int]fig4Cell{}
	for _, w := range dbbench.Workloads {
		results[w] = map[policy.Variant]map[int]fig4Cell{}
		for _, v := range policy.All {
			results[w][v] = map[int]fig4Cell{}
		}
	}
	for _, size := range sizes {
		rows, err := harness.RunFig4(policy.All, *opsFlag, size, *threads, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range rows {
			results[r.Workload][r.Variant][size] = fig4Cell{
				microsPerOp: r.Result.MicrosPerOp,
				latency:     r.Result.Latency,
			}
		}
	}
	return results
}

// latencyCell renders "p50/p99/p999/max" in µs, or "-" for phases
// without per-op histograms (readseq iterates rather than issuing
// requests). Max is the exact largest recorded latency, not a bucket
// bound.
func latencyCell(h *histogram.Histogram) string {
	if h.Count() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f/%.1f/%.1f/%.1f",
		h.Percentile(50).Microseconds(),
		h.Percentile(99).Microseconds(),
		h.Percentile(99.9).Microseconds(),
		h.Max().Microseconds())
}

func printFig4(workload string, sizes []int, table map[policy.Variant]map[int]fig4Cell) {
	fmt.Printf("\nFigure %s: %s, time per operation (µs), %d ops, %d thread(s)\n",
		figOf[workload], workload, *opsFlag, *threads)
	fmt.Printf("%-14s", "Variant")
	for _, s := range sizes {
		fmt.Printf("%10dB", s)
	}
	fmt.Println()
	for _, v := range policy.All {
		fmt.Printf("%-14s", v)
		for _, s := range sizes {
			cell := table[v][s]
			fmt.Printf("%11.2f", cell.microsPerOp)
		}
		fmt.Println()
	}
	// Companion latency table: tail behaviour is where the sync
	// policies differ most (stalls hide behind identical means).
	fmt.Printf("\nLatency p50/p99/p999/max (µs), %s\n", workload)
	fmt.Printf("%-14s", "Variant")
	for _, s := range sizes {
		fmt.Printf("  %24dB", s)
	}
	fmt.Println()
	for _, v := range policy.All {
		fmt.Printf("%-14s", v)
		for _, s := range sizes {
			cell := table[v][s]
			fmt.Printf("  %25s", latencyCell(&cell.latency))
		}
		fmt.Println()
	}
}

// runFig4 prints one of Figures 4a–4d: µs/op per variant × value size.
func runFig4(workload string) {
	sizes := valueSizes()
	printFig4(workload, sizes, collectFig4(sizes)[workload])
}

// runFig4All sweeps the variant × value-size matrix once and prints
// all four figures from it.
func runFig4All() {
	sizes := valueSizes()
	results := collectFig4(sizes)
	for _, w := range dbbench.Workloads {
		printFig4(w, sizes, results[w])
	}
}

func runTable1() {
	fmt.Printf("\nTable 1: syncs and data synced, fillrandom 1KB, %d ops\n", *opsFlag)
	rows, err := harness.RunTable1(policy.All, *opsFlag, *threads, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-14s %12s %14s\n", "LSM-tree", "No. of syncs", "Size synced")
	for _, r := range rows {
		fmt.Printf("%-14s %12d %11.2f MB\n", r.Variant, r.Syncs, float64(r.BytesSynced)/(1<<20))
	}
}

func runFig2b() {
	fmt.Printf("\nFigure 2b: SSTable size and syncs on LevelDB, %d ops, 1KB values\n", *opsFlag)
	rows, err := harness.RunFig2b(*opsFlag, 1024, *threads, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-12s %-12s %-8s %14s\n", "Workload", "Table", "Syncs", "Exec time")
	for _, r := range rows {
		mode := "No-Sync"
		if r.Synced {
			mode = "Sync"
		}
		fmt.Printf("%-12s %-12s %-8s %13.3fs\n",
			r.Workload, fmt.Sprintf("%dMB-class", r.PaperTable>>20), mode, r.Elapsed.Seconds())
	}
}
