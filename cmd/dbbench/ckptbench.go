package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"noblsm/internal/harness"
	"noblsm/internal/policy"
)

// ckptBenchSnapshot is the BENCH_PR9 record of the checkpoint/backup
// experiment: Checkpoint latency at GB-scale store marks (the
// O(manifest) claim — latency tracks file count, copied bytes stay at
// WAL-tail + manifest size while the store grows), and the fillrandom
// overhead of a checkpoint + incremental-backup loop against the same
// plain run (the non-blocking claim, gated at ≤5%).
type ckptBenchSnapshot struct {
	PR       int    `json:"pr"`
	Title    string `json:"title"`
	Workload string `json:"workload"`

	Run harness.CkptBenchResult `json:"run"`
}

// parseGBList parses the -ckpt-gb flag ("1,4,8") into ascending marks.
func parseGBList(s string) ([]float64, error) {
	var gbs []float64
	for _, part := range strings.Split(s, ",") {
		gb, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || gb <= 0 {
			return nil, fmt.Errorf("bad -ckpt-gb %q", s)
		}
		if len(gbs) > 0 && gb <= gbs[len(gbs)-1] {
			return nil, fmt.Errorf("-ckpt-gb marks must ascend: %q", s)
		}
		gbs = append(gbs, gb)
	}
	if len(gbs) == 0 {
		return nil, fmt.Errorf("-ckpt-gb is empty")
	}
	return gbs, nil
}

// runCkptBench measures the checkpoint experiments and writes the
// snapshot to path.
func runCkptBench(path string) {
	gbs, err := parseGBList(*ckptGB)
	if err != nil {
		fatal(err)
	}
	res, err := harness.RunCkptBench(policy.NobLSM, gbs, *opsFlag, 1024, *seed)
	if err != nil {
		fatal(err)
	}
	for _, p := range res.ScalePoints {
		fmt.Fprintf(os.Stderr,
			"ckpt bench: %4.0f GB store (%d tables) -> checkpoint %.0fµs, %d/%d files linked, %d bytes copied\n",
			p.TargetGB, p.LiveTables, p.LatencyUs, p.Linked, p.Files, p.CopiedBytes)
	}
	fmt.Fprintf(os.Stderr,
		"ckpt bench: fillrandom %.2fµs/op plain, %.2fµs/op with %d checkpoints + %d backups (overhead %.2f%%, gate ≤%.0f%%: %v)\n",
		res.PlainUsPerOp, res.CkptLoopUsPerOp, res.Checkpoints, res.Backups,
		res.OverheadPct, res.GateMaxPct, res.GateOK)
	if !res.GateOK {
		fatal(fmt.Errorf("checkpoint-loop overhead %.2f%% exceeds the %.0f%% gate", res.OverheadPct, res.GateMaxPct))
	}

	snap := ckptBenchSnapshot{
		PR:       9,
		Title:    "Zero-copy checkpoints and incremental backup: O(manifest) latency at GB scale, non-blocking under fillrandom",
		Workload: "sequential fill to 1/4/8GB marks with a checkpoint at each; fillrandom 1KB plain vs with checkpoint+incremental-backup every eighth of the run",
		Run:      res,
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("checkpoint bench snapshot written to %s\n", path)
}
