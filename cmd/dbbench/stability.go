package main

import (
	"encoding/json"
	"fmt"
	"os"

	"noblsm/internal/dbbench"
	"noblsm/internal/governor"
	"noblsm/internal/harness"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

// This file implements -stability-json: the long-run overwrite
// stability benchmark. A sustained overwrite is the workload where an
// LSM-tree's tail behaviour drifts — compaction debt accumulates, L0
// slowdowns kick in, and a cumulative histogram averages the
// degradation away. The run keeps the telemetry plane on and reports
// both the cumulative distribution and the windowed time-series, so a
// regression in *stability* (a late window with a collapsed p99 or a
// grown max-stall) is visible even when the overall mean moved little.

// stabilityStall is one stall cause's ledger entry.
type stabilityStall struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// stabilityDoc is the BENCH_PR6.json document.
type stabilityDoc struct {
	Benchmark string `json:"benchmark"`
	Variant   string `json:"variant"`
	Workload  string `json:"workload"`
	Ops       int64  `json:"ops"`
	ValueSize int    `json:"value_size"`
	Threads   int    `json:"threads"`
	Seed      int64  `json:"seed"`

	ElapsedVirtualSeconds float64 `json:"elapsed_virtual_seconds"`
	MeanOpsPerSec         float64 `json:"mean_ops_per_sec"`
	MicrosPerOp           float64 `json:"micros_per_op"`

	Latency runLatency `json:"latency"`

	// MaxStallUs is the largest single stall across the whole run
	// (from the time-series, which retains the per-window maxima).
	MaxStallUs float64                   `json:"max_stall_us"`
	Stalls     map[string]stabilityStall `json:"stalls,omitempty"`

	// Governor carries the admission controller's counters when the
	// run was governed (-governor).
	Governor *governor.Stats `json:"governor,omitempty"`

	SeriesIntervalNs int64            `json:"series_interval_ns"`
	DroppedWindows   uint64           `json:"dropped_windows"`
	Windows          []obs.WindowStat `json:"windows"`
}

// runStability fills a NobLSM store, then measures a sustained
// overwrite with the telemetry plane armed, and writes the snapshot.
func runStability(path string) {
	size := runValueSize()
	v := policy.NobLSM

	tl := vclock.NewTimeline(0)
	base := harness.ScaledOptions(*opsFlag, size, harness.PaperTable64MB)
	base.GovernorEnabled = *governorFlag
	reg := obs.NewRegistry()
	// One window per journal-commit interval: the scaled run sees the
	// same ~150 windows the paper's run does.
	tel := obs.NewTelemetry(reg, base.PollInterval, 0)
	st, err := harness.NewStoreObserved(tl, v, base, base.PollInterval,
		obs.Sink{Metrics: reg, Telemetry: tel})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\nOverwrite stability: %s, %d ops, %dB values, %d thread(s)\n",
		v, *opsFlag, size, *threads)

	now := tl.Now()
	fill, err := harness.RunDBBench(st, now, dbbench.FillRandom, *opsFlag, size, *threads, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	now = now.Add(fill.Elapsed)
	st.ResetCounters()

	res, err := harness.RunDBBench(st, now, dbbench.Overwrite, *opsFlag, size, *threads, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	lat := res.Latency
	doc := stabilityDoc{
		Benchmark:             "overwrite-stability",
		Variant:               string(v),
		Workload:              dbbench.Overwrite,
		Ops:                   res.Ops,
		ValueSize:             size,
		Threads:               *threads,
		Seed:                  *seed,
		ElapsedVirtualSeconds: res.Elapsed.Seconds(),
		MicrosPerOp:           res.MicrosPerOp,
		Latency: runLatency{
			MeanUs: lat.Mean().Microseconds(),
			P50Us:  lat.Percentile(50).Microseconds(),
			P99Us:  lat.Percentile(99).Microseconds(),
			P999Us: lat.Percentile(99.9).Microseconds(),
			MaxUs:  lat.Max().Microseconds(),
		},
		MaxStallUs:       tel.Series.MaxStall().Microseconds(),
		SeriesIntervalNs: int64(tel.Series.Interval()),
		DroppedWindows:   tel.Series.Dropped(),
		Windows:          tel.Series.Windows(),
	}
	if res.Elapsed > 0 {
		doc.MeanOpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	}
	for c := 0; c < obs.NumStallCauses; c++ {
		cause := obs.StallCause(c)
		if tel.Stalls.Count(cause) == 0 {
			continue
		}
		if doc.Stalls == nil {
			doc.Stalls = map[string]stabilityStall{}
		}
		doc.Stalls[cause.String()] = stabilityStall{
			Count:   tel.Stalls.Count(cause),
			TotalNs: int64(tel.Stalls.TotalNs(cause)),
			MaxNs:   int64(tel.Stalls.MaxNs(cause)),
		}
	}

	if *governorFlag {
		gs := st.DB.GovernorStats()
		doc.Governor = &gs
	}

	fmt.Printf("%-14s %10.2f µs/op  %10.0f ops/sec  p99=%.1fµs p999=%.1fµs max=%.1fµs max-stall=%.1fµs windows=%d\n",
		v, doc.MicrosPerOp, doc.MeanOpsPerSec, doc.Latency.P99Us,
		doc.Latency.P999Us, doc.Latency.MaxUs, doc.MaxStallUs, len(doc.Windows))

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("stability snapshot written to %s\n", path)
}
