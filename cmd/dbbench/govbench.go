package main

import (
	"encoding/json"
	"fmt"
	"os"

	"noblsm/internal/dbbench"
	"noblsm/internal/governor"
	"noblsm/internal/harness"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

// This file implements -governor-bench-json: the PR 10 stability gate.
// It runs the same sustained-overwrite workload twice on identical
// stores — admission governor off (stock stall cliff), then on — and
// reports both tails plus the two numbers the gate cares about: how
// much the worst-case single stall shrank, and what the smoothing cost
// in mean throughput. The claim under test is the governor's contract:
// convert the rotation/slowdown cliff into many bounded pacing delays
// at (nearly) unchanged mean throughput.

// govRun is one arm of the comparison.
type govRun struct {
	Governor bool `json:"governor"`

	ElapsedVirtualSeconds float64 `json:"elapsed_virtual_seconds"`
	MeanOpsPerSec         float64 `json:"mean_ops_per_sec"`
	MicrosPerOp           float64 `json:"micros_per_op"`

	Latency runLatency `json:"latency"`

	// WorstStallUs is the largest single stall of ANY cause over the
	// measured phase (exact, from the ledger — not windowed maxima).
	WorstStallUs    float64                   `json:"worst_stall_us"`
	WorstStallCause string                    `json:"worst_stall_cause,omitempty"`
	Stalls          map[string]stabilityStall `json:"stalls,omitempty"`

	GovernorStats *governor.Stats `json:"governor_stats,omitempty"`
}

// govDoc is the BENCH_PR10.json document.
type govDoc struct {
	Benchmark string `json:"benchmark"`
	Variant   string `json:"variant"`
	Workload  string `json:"workload"`
	Ops       int64  `json:"ops"`
	ValueSize int    `json:"value_size"`
	Threads   int    `json:"threads"`
	Seed      int64  `json:"seed"`

	Off govRun `json:"off"`
	On  govRun `json:"on"`

	// StallReductionX is Off.WorstStallUs / On.WorstStallUs — how many
	// times smaller the worst single stall became under the governor.
	StallReductionX float64 `json:"stall_reduction_x"`
	// ThroughputCostPct is the mean-throughput price of smoothing:
	// (Off−On)/Off mean ops/sec, in percent (negative: governed run
	// was faster).
	ThroughputCostPct float64 `json:"throughput_cost_pct"`
	// The PR 10 acceptance gate: ≥10× stall reduction at ≤5% cost.
	GateStallReductionX   float64 `json:"gate_stall_reduction_x"`
	GateThroughputCostPct float64 `json:"gate_throughput_cost_pct"`
	Pass                  bool    `json:"pass"`
}

// govArm provisions a fresh observed NobLSM store and measures the
// fill + overwrite stability workload on it, with the admission
// governor on or off.
func govArm(governed bool) govRun {
	size := runValueSize()
	tl := vclock.NewTimeline(0)
	base := harness.ScaledOptions(*opsFlag, size, harness.PaperTable64MB)
	base.GovernorEnabled = governed
	reg := obs.NewRegistry()
	tel := obs.NewTelemetry(reg, base.PollInterval, 0)
	st, err := harness.NewStoreObserved(tl, policy.NobLSM, base, base.PollInterval,
		obs.Sink{Metrics: reg, Telemetry: tel})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	now := tl.Now()
	fill, err := harness.RunDBBench(st, now, dbbench.FillRandom, *opsFlag, size, *threads, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	now = now.Add(fill.Elapsed)
	st.ResetCounters()
	tel.Stalls.Reset()

	res, err := harness.RunDBBench(st, now, dbbench.Overwrite, *opsFlag, size, *threads, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	lat := res.Latency
	run := govRun{
		Governor:              governed,
		ElapsedVirtualSeconds: res.Elapsed.Seconds(),
		MicrosPerOp:           res.MicrosPerOp,
		Latency: runLatency{
			MeanUs: lat.Mean().Microseconds(),
			P50Us:  lat.Percentile(50).Microseconds(),
			P99Us:  lat.Percentile(99).Microseconds(),
			P999Us: lat.Percentile(99.9).Microseconds(),
			MaxUs:  lat.Max().Microseconds(),
		},
	}
	if res.Elapsed > 0 {
		run.MeanOpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	}
	for c := 0; c < obs.NumStallCauses; c++ {
		cause := obs.StallCause(c)
		if tel.Stalls.Count(cause) == 0 {
			continue
		}
		if run.Stalls == nil {
			run.Stalls = map[string]stabilityStall{}
		}
		run.Stalls[cause.String()] = stabilityStall{
			Count:   tel.Stalls.Count(cause),
			TotalNs: int64(tel.Stalls.TotalNs(cause)),
			MaxNs:   int64(tel.Stalls.MaxNs(cause)),
		}
		if us := tel.Stalls.MaxNs(cause).Microseconds(); us > run.WorstStallUs {
			run.WorstStallUs = us
			run.WorstStallCause = cause.String()
		}
	}
	if governed {
		gs := st.DB.GovernorStats()
		run.GovernorStats = &gs
	}
	return run
}

// runGovernorBench measures both arms and writes the gated comparison.
func runGovernorBench(path string) {
	fmt.Printf("\nAdmission-governor stability: NobLSM overwrite, %d ops, %dB values, %d thread(s)\n",
		*opsFlag, runValueSize(), *threads)

	off := govArm(false)
	on := govArm(true)

	doc := govDoc{
		Benchmark:             "admission-governor",
		Variant:               string(policy.NobLSM),
		Workload:              dbbench.Overwrite,
		Ops:                   *opsFlag,
		ValueSize:             runValueSize(),
		Threads:               *threads,
		Seed:                  *seed,
		Off:                   off,
		On:                    on,
		GateStallReductionX:   10,
		GateThroughputCostPct: 5,
	}
	if on.WorstStallUs > 0 {
		doc.StallReductionX = off.WorstStallUs / on.WorstStallUs
	} else if off.WorstStallUs > 0 {
		// The governed run never stalled at all: report the strongest
		// claim the data supports.
		doc.StallReductionX = off.WorstStallUs
	}
	if off.MeanOpsPerSec > 0 {
		doc.ThroughputCostPct = 100 * (off.MeanOpsPerSec - on.MeanOpsPerSec) / off.MeanOpsPerSec
	}
	doc.Pass = doc.StallReductionX >= doc.GateStallReductionX &&
		doc.ThroughputCostPct <= doc.GateThroughputCostPct

	for _, r := range []govRun{off, on} {
		label := "governor off"
		if r.Governor {
			label = "governor on"
		}
		fmt.Printf("%-13s %10.2f µs/op  %10.0f ops/sec  p99=%.1fµs max=%.1fµs  worst-stall=%.1fµs (%s)\n",
			label, r.MicrosPerOp, r.MeanOpsPerSec, r.Latency.P99Us, r.Latency.MaxUs,
			r.WorstStallUs, r.WorstStallCause)
	}
	verdict := "FAIL"
	if doc.Pass {
		verdict = "PASS"
	}
	fmt.Printf("stall reduction %.1f× (gate ≥%.0f×), throughput cost %.2f%% (gate ≤%.0f%%): %s\n",
		doc.StallReductionX, doc.GateStallReductionX,
		doc.ThroughputCostPct, doc.GateThroughputCostPct, verdict)

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("governor snapshot written to %s\n", path)
	if !doc.Pass {
		os.Exit(1)
	}
}
