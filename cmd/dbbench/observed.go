package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"noblsm/internal/dbbench"
	"noblsm/internal/harness"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// This file implements the observed run mode: one workload across the
// variants, each on a stack that publishes into a shared metrics
// registry and an event ring. The run prints the latency table,
// -metrics-json dumps machine-readable per-variant metrics, and
// -trace writes a single Chrome trace_event file with one process per
// variant so Perfetto shows the variants' virtual timelines side by
// side.

// runLatency summarizes the per-op latency distribution. MaxUs is the
// exact largest recorded latency, not a bucket bound.
type runLatency struct {
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// runStalls itemizes stall time by cause, in virtual nanoseconds.
type runStalls struct {
	SlowdownCount int64 `json:"slowdown_count"`
	SlowdownNs    int64 `json:"slowdown_ns"`
	RotationNs    int64 `json:"rotation_ns"`
	SyncNs        int64 `json:"ext4_sync_ns"`
	ThrottleNs    int64 `json:"ext4_throttle_ns"`
	BarrierNs     int64 `json:"ext4_barrier_ns"`
}

// runCompaction summarizes compaction volume.
type runCompaction struct {
	Minor        int64 `json:"minor"`
	Major        int64 `json:"major"`
	TrivialMoves int64 `json:"trivial_moves"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
}

// runFaults reports the -faults plane: what was injected and how the
// engine absorbed it.
type runFaults struct {
	Injected     int64 `json:"injected"`
	Errors       int64 `json:"errors"`
	ShortWrites  int64 `json:"short_writes"`
	TornWrites   int64 `json:"torn_writes"`
	BitFlips     int64 `json:"bit_flips"`
	ReadBitFlips int64 `json:"read_bit_flips"`
	SyncErrors   int64 `json:"sync_errors"`
	ReadRetries  int64 `json:"read_retries"`
	ReadsHealed  int64 `json:"reads_healed"`
	Quarantined  int64 `json:"tables_quarantined"`
	BgTransient  int64 `json:"bg_transient_errors"`
	ReadOnly     bool  `json:"read_only"`
}

// runMetrics is one variant's entry in the -metrics-json document.
type runMetrics struct {
	Variant        string        `json:"variant"`
	Workload       string        `json:"workload"`
	Ops            int64         `json:"ops"`
	ValueSize      int           `json:"value_size"`
	Threads        int           `json:"threads"`
	ElapsedSeconds float64       `json:"elapsed_virtual_seconds"`
	ThroughputOps  float64       `json:"throughput_ops_per_sec"`
	MicrosPerOp    float64       `json:"micros_per_op"`
	Latency        *runLatency   `json:"latency,omitempty"`
	Stalls         runStalls     `json:"stalls"`
	Compaction     runCompaction `json:"compaction"`
	Syncs          int64         `json:"syncs"`
	BytesSynced    int64         `json:"bytes_synced"`
	TraceEvents    int           `json:"trace_events,omitempty"`
	TraceDropped   uint64        `json:"trace_dropped,omitempty"`
	Faults         *runFaults    `json:"faults,omitempty"`
	// MaxStallUs and DroppedWindows are populated when -telemetry (or
	// -listen) armed the attribution plane.
	MaxStallUs     float64      `json:"max_stall_us,omitempty"`
	DroppedWindows uint64       `json:"dropped_windows,omitempty"`
	Registry       obs.Snapshot `json:"registry"`
}

// runDocument is the top-level -metrics-json shape.
type runDocument struct {
	Workload string       `json:"workload"`
	Ops      int64        `json:"ops"`
	Variants []runMetrics `json:"variants"`
}

// runValueSize picks the value size for -run: the single -values
// entry if exactly one was given, else the paper's headline 1 KB.
func runValueSize() int {
	sizes := valueSizes()
	if len(sizes) == 1 {
		return sizes[0]
	}
	return 1024
}

// runVariants resolves -variants, defaulting to all systems.
func runVariants() []policy.Variant {
	if *variantsFlag == "" {
		return policy.All
	}
	byName := map[string]policy.Variant{}
	for _, v := range policy.All {
		byName[strings.ToLower(string(v))] = v
	}
	var out []policy.Variant
	for _, part := range strings.Split(*variantsFlag, ",") {
		v, ok := byName[strings.ToLower(strings.TrimSpace(part))]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown variant %q (have %v)\n", part, policy.All)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func validRunWorkload(w string) bool {
	switch w {
	case dbbench.FillSeq, dbbench.FillRandom, dbbench.Overwrite,
		dbbench.ReadSeq, dbbench.ReadRandom:
		return true
	}
	return false
}

// runObserved executes the workload on every requested variant with
// full observability and emits the requested artifacts.
func runObserved(workload string) {
	if !validRunWorkload(workload) {
		fmt.Fprintf(os.Stderr, "unknown -run workload %q\n", workload)
		os.Exit(2)
	}
	size := runValueSize()
	variants := runVariants()
	var faultRules []vfs.Rule
	if *faultsFlag != "" {
		var err error
		faultRules, err = vfs.ParseFaultSpec(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	doc := runDocument{Workload: workload, Ops: *opsFlag}
	exporter := obs.NewChromeExporter()

	// -listen serves the live exposition surface for the duration of
	// the run. The run provisions one stack per variant, so the
	// listener re-reads a shared Exposition that is repointed at each
	// variant's stack as it starts.
	telemetryOn := *telemetryFlag || *listenFlag != ""
	var (
		expoMu sync.Mutex
		expo   obs.Exposition
	)
	if *listenFlag != "" {
		srv, addr, err := obs.ServeDynamic(*listenFlag, func() obs.Exposition {
			expoMu.Lock()
			defer expoMu.Unlock()
			return expo
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s/ (endpoints: /metrics /stats /trace /doctor /debug/pprof/)\n", addr)
	}

	fmt.Printf("\nObserved %s: %d ops, %dB values, %d thread(s)\n",
		workload, *opsFlag, size, *threads)
	fmt.Printf("%-14s %10s %12s %10s %10s %10s %10s\n",
		"Variant", "µs/op", "ops/sec", "p50µs", "p99µs", "p999µs", "maxµs")

	for i, v := range variants {
		tl := vclock.NewTimeline(0)
		tr := obs.NewTracer(obs.DefaultTraceEvents)
		base := harness.ScaledOptions(*opsFlag, size, harness.PaperTable64MB)
		base.GovernorEnabled = *governorFlag
		sink := obs.Sink{Trace: tr}
		if telemetryOn {
			sink.Metrics = obs.NewRegistry()
			// One window per journal-commit interval: the scaled run
			// sees the same ~150 windows the paper's run does.
			sink.Telemetry = obs.NewTelemetry(sink.Metrics, base.PollInterval, 0)
		}
		st, err := harness.NewStoreFaulted(tl, v, base, base.PollInterval,
			sink, *seed, faultRules)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		expoMu.Lock()
		expo = st.Exposition()
		expoMu.Unlock()
		now := tl.Now()
		if workload == dbbench.ReadSeq || workload == dbbench.ReadRandom {
			// Read workloads measure an already-filled store, as
			// db_bench chains fillrandom before the read phases.
			fill, err := harness.RunDBBench(st, now, dbbench.FillRandom, *opsFlag, size, *threads, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			now = now.Add(fill.Elapsed)
			st.ResetCounters()
		}
		res, err := harness.RunDBBench(st, now, workload, *opsFlag, size, *threads, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		snap := st.Metrics.Snapshot()
		m := runMetrics{
			Variant:        string(v),
			Workload:       workload,
			Ops:            res.Ops,
			ValueSize:      size,
			Threads:        *threads,
			ElapsedSeconds: res.Elapsed.Seconds(),
			MicrosPerOp:    res.MicrosPerOp,
			Stalls: runStalls{
				SlowdownCount: snap.Counters["engine.stall.slowdown_count"],
				SlowdownNs:    snap.Counters["engine.stall.slowdown_ns"],
				RotationNs:    snap.Counters["engine.stall.rotation_ns"],
				SyncNs:        snap.Counters["ext4.stall.sync_ns"],
				ThrottleNs:    snap.Counters["ext4.stall.throttle_ns"],
				BarrierNs:     snap.Counters["ext4.stall.barrier_ns"],
			},
			Compaction: runCompaction{
				Minor:        snap.Counters["engine.compactions.minor"],
				Major:        snap.Counters["engine.compactions.major"],
				TrivialMoves: snap.Counters["engine.compactions.trivial_moves"],
				BytesRead:    snap.Counters["compaction.bytes_read"],
				BytesWritten: snap.Counters["compaction.bytes_written"],
			},
			Syncs:        res.Syncs,
			BytesSynced:  res.BytesSynced,
			TraceEvents:  tr.Len(),
			TraceDropped: tr.Dropped(),
			Registry:     snap,
		}
		if res.Elapsed > 0 {
			m.ThroughputOps = float64(res.Ops) / res.Elapsed.Seconds()
		}
		if tel := st.Telemetry; tel != nil {
			m.MaxStallUs = tel.Series.MaxStall().Microseconds()
			m.DroppedWindows = tel.Series.Dropped()
		}
		lat := res.Latency
		if lat.Count() > 0 {
			m.Latency = &runLatency{
				MeanUs: lat.Mean().Microseconds(),
				P50Us:  lat.Percentile(50).Microseconds(),
				P99Us:  lat.Percentile(99).Microseconds(),
				P999Us: lat.Percentile(99.9).Microseconds(),
				MaxUs:  lat.Max().Microseconds(),
			}
			fmt.Printf("%-14s %10.2f %12.0f %10.1f %10.1f %10.1f %10.1f\n",
				v, m.MicrosPerOp, m.ThroughputOps,
				m.Latency.P50Us, m.Latency.P99Us, m.Latency.P999Us, m.Latency.MaxUs)
		} else {
			fmt.Printf("%-14s %10.2f %12.0f %10s %10s %10s %10s\n",
				v, m.MicrosPerOp, m.ThroughputOps, "-", "-", "-", "-")
		}
		if st.Faults != nil {
			fs := st.Faults.Stats()
			m.Faults = &runFaults{
				Injected:     fs.Injected,
				Errors:       fs.Errors,
				ShortWrites:  fs.ShortWrites,
				TornWrites:   fs.TornWrites,
				BitFlips:     fs.BitFlips,
				ReadBitFlips: fs.ReadBitFlips,
				SyncErrors:   fs.SyncErrors,
				ReadRetries:  snap.Counters["engine.read_retries"],
				ReadsHealed:  snap.Counters["engine.reads_healed"],
				Quarantined:  snap.Counters["engine.tables_quarantined"],
				BgTransient:  snap.Counters["engine.bg.transient_errors"],
				ReadOnly:     st.DB.ReadOnly(),
			}
			fmt.Printf("%-14s faults injected=%d errors=%d short=%d torn=%d sync=%d | retries=%d healed=%d quarantined=%d bg_transient=%d read_only=%v\n",
				"", m.Faults.Injected, m.Faults.Errors, m.Faults.ShortWrites,
				m.Faults.TornWrites, m.Faults.SyncErrors, m.Faults.ReadRetries,
				m.Faults.ReadsHealed, m.Faults.Quarantined, m.Faults.BgTransient,
				m.Faults.ReadOnly)
		}
		doc.Variants = append(doc.Variants, m)
		exporter.AddProcess(i+1, string(v), tr)
	}

	if *metricsJSON != "" {
		f, err := os.Create(*metricsJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nmetrics written to %s\n", *metricsJSON)
	}
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := exporter.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceFlag)
	}
}
