package main

import (
	"encoding/json"
	"fmt"
	"os"

	"noblsm/internal/harness"
	"noblsm/internal/policy"
)

// readBenchSnapshot is the BENCH_PR7 record of the read-path
// experiment: the same store measured twice — once with the PR 7 read
// features off (baseline) and once on (per-block compression with a
// per-level codec ladder, compressed block cache, iterator readahead,
// per-level bloom sizing) — plus MultiGet against single Gets on the
// tuned side. Both sides run in the same build, so the comparison
// isolates exactly the read-path features rather than whatever else
// changed between commits.
type readBenchSnapshot struct {
	PR       int    `json:"pr"`
	Title    string `json:"title"`
	Workload string `json:"workload"`

	Run harness.ReadBenchResult `json:"run"`
}

// runReadBench measures the read-path feature set and writes the
// snapshot to path.
func runReadBench(path string) {
	res, err := harness.RunReadBench(policy.NobLSM, *opsFlag, 1024, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"read bench: readrandom-cold %.2fx, scan-cold %.2fx, multiget16 vs get %.2fx\n",
		res.SpeedupReadRandomCold, res.SpeedupScanCold, res.MultiGetVsSingle)

	snap := readBenchSnapshot{
		PR:       7,
		Title:    "Read-path raw speed: per-block compression, compressed block cache, MultiGet, and iterator readahead",
		Workload: "fillrandom 1KB compressible (ratio 0.5) + readrandom hot/cold, full scan cold, get vs multiget16 warm",
		Run:      res,
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("read bench snapshot written to %s\n", path)
}
