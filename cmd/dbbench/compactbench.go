package main

import (
	"encoding/json"
	"fmt"
	"os"

	"noblsm/internal/harness"
	"noblsm/internal/policy"
)

// compactionBenchSnapshot is the BENCH_PR3-style record of the
// compaction-bound overwrite experiment: wall-clock throughput with
// the pipelined sharded compaction engine against a recorded baseline
// measured with the same driver on the pre-subcompaction build.
type compactionBenchSnapshot struct {
	PR       int    `json:"pr"`
	Title    string `json:"title"`
	Workload string `json:"workload"`
	Ops      int64  `json:"ops"`
	// BaselineOpsPerSec is the before number, passed in via
	// -baseline-ops-per-sec (a stored measurement of the previous
	// build — rebuilding it from this tree would silently include the
	// unrelated engine improvements that rode along).
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	BaselineNote      string  `json:"baseline_note,omitempty"`

	Run harness.CompactionBenchResult `json:"run"`

	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
}

// runCompactionBench measures the compaction-bound overwrite workload
// (2 MiB-class scaled tables, AsyncCompaction, -subcompactions shards)
// and writes the snapshot to path.
func runCompactionBench(path string) {
	res, err := harness.RunRealCompactionBound(
		policy.LevelDB, *opsFlag, 1024, 4, *subcompFlag, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "compaction-bound overwrite g=4 subcompactions=%d: %.0f ops/sec, %d majors, %.1f MB/s compaction writes\n",
		res.Subcompactions, res.OpsPerSec, res.MajorCompaction, res.CompactionWriteMBps)

	snap := compactionBenchSnapshot{
		PR:                3,
		Title:             "Parallel key-range subcompactions with a pipelined read-merge-write compaction engine",
		Workload:          "overwrite, compaction-bound (2MB-class scaled tables), AsyncCompaction",
		Ops:               *opsFlag,
		BaselineOpsPerSec: *baselineOps,
		BaselineNote:      *baselineNote,
		Run:               res,
	}
	if snap.BaselineOpsPerSec > 0 {
		snap.SpeedupVsBaseline = res.OpsPerSec / snap.BaselineOpsPerSec
		fmt.Fprintf(os.Stderr, "speedup vs baseline %.0f ops/sec: %.2fx\n",
			snap.BaselineOpsPerSec, snap.SpeedupVsBaseline)
	}

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("compaction bench snapshot written to %s\n", path)
}
