package main

import (
	"encoding/json"
	"fmt"
	"os"

	"noblsm/internal/dbbench"
	"noblsm/internal/harness"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
	"noblsm/internal/ycsb"
)

// benchSnapshot is the machine-readable performance trajectory of one
// build: wall-clock throughput of the Go engine under real goroutine
// concurrency, plus the paper-facing virtual-time micro-runs (Fig 4a
// one-thread and Fig 5b four-thread shapes) that must not regress
// when the hot path changes. scripts/bench.sh emits one of these per
// build and BENCH_PR<n>.json files pair a before with an after.
type benchSnapshot struct {
	Ops int64 `json:"ops"`
	// RealTime is wall-clock ops/sec (not virtual): the concurrent
	// fillrandom entries are the PR's headline numbers.
	RealTime []harness.RealBenchResult `json:"real_time"`
	// Fig4aUsPerOp: variant → virtual µs/op, fillrandom 1 KB, 1 thread.
	Fig4aUsPerOp map[string]float64 `json:"fig4a_us_per_op"`
	// Fig5bUsPerOp: variant → virtual µs/op of the YCSB-A run phase at
	// 4 threads (the Fig 5b configuration).
	Fig5bUsPerOp map[string]float64 `json:"fig5b_us_per_op"`
}

// runBenchJSON executes the suite and writes the snapshot to path.
func runBenchJSON(path string) {
	snap := benchSnapshot{
		Ops:          *opsFlag,
		Fig4aUsPerOp: map[string]float64{},
		Fig5bUsPerOp: map[string]float64{},
	}

	// Real-time concurrency: 1 goroutine as the reference, 4 as the
	// contended configuration the write path is built for.
	for _, g := range []int{1, 4} {
		res, err := harness.RunRealConcurrent(policy.LevelDB, dbbench.FillRandom, *opsFlag, 1024, g, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "real fillrandom g=%d: %.0f ops/sec\n", g, res.OpsPerSec)
		snap.RealTime = append(snap.RealTime, res)
	}
	res, err := harness.RunRealConcurrent(policy.LevelDB, dbbench.ReadRandom, *opsFlag, 1024, 4, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "real readrandom g=4: %.0f ops/sec\n", res.OpsPerSec)
	snap.RealTime = append(snap.RealTime, res)

	// Virtual-time shapes, scaled down so the full variant sweep stays
	// fast; the same ops always produce the same virtual result, so
	// before/after snapshots at equal -ops are directly comparable.
	virtOps := *opsFlag / 5
	if virtOps < 5_000 {
		virtOps = 5_000
	}
	for _, v := range policy.All {
		rows, err := harness.RunFig4([]policy.Variant{v}, virtOps, 1024, 1, *seed)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			if r.Workload == dbbench.FillRandom {
				snap.Fig4aUsPerOp[string(r.Variant)] = r.Result.MicrosPerOp
			}
		}

		tl := vclock.NewTimeline(0)
		st, err := harness.NewStore(tl, v, harness.ScaledOptions(virtOps, 1024, harness.PaperTable64MB))
		if err != nil {
			fatal(err)
		}
		loadRes, err := harness.RunYCSBLoad(st, tl.Now(), "Load-A", virtOps, 1024, 4, *seed)
		if err != nil {
			fatal(err)
		}
		wl, err := ycsb.ByName("A")
		if err != nil {
			fatal(err)
		}
		st.ResetCounters()
		runRes, err := harness.RunYCSB(st, tl.Now().Add(loadRes.Elapsed), wl, virtOps, virtOps, 1024, 4, *seed)
		if err != nil {
			fatal(err)
		}
		snap.Fig5bUsPerOp[string(v)] = runRes.MicrosPerOp
		fmt.Fprintf(os.Stderr, "virtual %s: fig4a=%.2fµs/op fig5b(A,4thr)=%.2fµs/op\n",
			v, snap.Fig4aUsPerOp[string(v)], runRes.MicrosPerOp)
	}

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("bench snapshot written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
