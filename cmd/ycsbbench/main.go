// Command ycsbbench regenerates the paper's macro-benchmark results:
// Figure 5a (YCSB, single thread) and Figure 5b (four threads). The
// phases run in the paper's recommended order — Load-A, A, B, C, F, D,
// Load-E, E — with the Load phases clearing the data set.
//
// Usage:
//
//	ycsbbench -threads 1                 # Figure 5a
//	ycsbbench -threads 4                 # Figure 5b
//	ycsbbench -records 200000 -ops 50000 # scale (paper: 50M / 10M)
//	ycsbbench -listen :8080              # live /metrics, /stats, /doctor
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"noblsm/internal/harness"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
)

var (
	records   = flag.Int64("records", 100_000, "records per load phase (paper: 50M)")
	ops       = flag.Int64("ops", 20_000, "requests per workload phase (paper: 10M)")
	threads   = flag.Int("threads", 1, "client threads (paper: 1 for Fig 5a, 4 for Fig 5b)")
	valueSize = flag.Int("value", 1024, "value size in bytes")
	seed      = flag.Int64("seed", 42, "workload seed")

	telemetry = flag.Bool("telemetry", false, "enable per-op latency attribution and the stall ledger (implied by -listen)")
	listen    = flag.String("listen", "", "serve live telemetry (/metrics, /stats, /doctor, /debug/pprof) on this address while the sequence runs, e.g. :8080")
)

func main() {
	flag.Parse()
	if *records < 1 || *ops < 1 || *threads < 1 || *valueSize < 1 {
		fmt.Fprintln(os.Stderr, "-records, -ops, -threads and -value must be positive")
		os.Exit(2)
	}
	telemetryOn := *telemetry || *listen != ""
	var (
		expoMu sync.Mutex
		expo   obs.Exposition
	)
	if *listen != "" {
		srv, addr, err := obs.ServeDynamic(*listen, func() obs.Exposition {
			expoMu.Lock()
			defer expoMu.Unlock()
			return expo
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s/\n", addr)
	}
	fig := "5a"
	if *threads > 1 {
		fig = "5b"
	}
	fmt.Printf("\nFigure %s: YCSB, time per operation (µs), %d records / %d ops, %d thread(s)\n",
		fig, *records, *ops, *threads)
	fmt.Printf("%-14s", "Variant")
	for _, p := range harness.YCSBPhases {
		fmt.Printf("%9s", p)
	}
	fmt.Println()
	for _, v := range policy.All {
		var sink obs.Sink
		if telemetryOn {
			sink.Metrics = obs.NewRegistry()
			sink.Telemetry = obs.NewTelemetry(sink.Metrics, 0, 0)
		}
		onStore := func(st *harness.Store) {
			expoMu.Lock()
			expo = st.Exposition()
			expoMu.Unlock()
		}
		rows, err := harness.RunFig5Observed(v, *records, *ops, *valueSize, *threads, *seed, sink, onStore)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s", v)
		for _, r := range rows {
			fmt.Printf("%9.2f", r.Result.MicrosPerOp)
		}
		fmt.Println()
	}
}
