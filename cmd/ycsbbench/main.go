// Command ycsbbench regenerates the paper's macro-benchmark results:
// Figure 5a (YCSB, single thread) and Figure 5b (four threads). The
// phases run in the paper's recommended order — Load-A, A, B, C, F, D,
// Load-E, E — with the Load phases clearing the data set.
//
// It also hosts the PR 8 server-scaling experiment: -serverbench
// drives a multi-shard noblsm-server over loopback TCP at fixed
// client concurrency across increasing shard counts, reporting
// aggregate throughput in virtual time (the paper's-hardware number)
// and wall clock, with per-request p50/p99/p999.
//
// Usage:
//
//	ycsbbench -threads 1                 # Figure 5a
//	ycsbbench -threads 4                 # Figure 5b
//	ycsbbench -records 200000 -ops 50000 # scale (paper: 50M / 10M)
//	ycsbbench -listen :8080              # live /metrics, /stats, /doctor
//	ycsbbench -serverbench -server-shards 1,4,8,16 -json BENCH_PR8.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"noblsm/internal/harness"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
)

var (
	records   = flag.Int64("records", 100_000, "records per load phase (paper: 50M)")
	ops       = flag.Int64("ops", 20_000, "requests per workload phase (paper: 10M)")
	threads   = flag.Int("threads", 1, "client threads (paper: 1 for Fig 5a, 4 for Fig 5b)")
	valueSize = flag.Int("value", 1024, "value size in bytes")
	seed      = flag.Int64("seed", 42, "workload seed")

	telemetry = flag.Bool("telemetry", false, "enable per-op latency attribution and the stall ledger (implied by -listen)")
	listen    = flag.String("listen", "", "serve live telemetry (/metrics, /stats, /doctor, /debug/pprof) on this address while the sequence runs, e.g. :8080")

	serverBench   = flag.Bool("serverbench", false, "run the multi-shard server scaling experiment instead of the YCSB figures")
	serverShards  = flag.String("server-shards", "1,4,8,16", "comma-separated shard counts for -serverbench")
	serverWorkers = flag.Int("server-workers", 16, "client goroutines for -serverbench (held equal across shard counts)")
	serverConns   = flag.Int("server-conns", 8, "client connection-pool size for -serverbench")
	jsonOut       = flag.String("json", "", "write -serverbench results to this JSON file")
)

// serverBenchDoc is the JSON document -serverbench -json emits.
type serverBenchDoc struct {
	Benchmark string                    `json:"benchmark"`
	Workload  string                    `json:"workload"`
	Ops       int64                     `json:"ops"`
	ValueSize int                       `json:"value_size"`
	Workers   int                       `json:"workers"`
	Conns     int                       `json:"conns"`
	Note      string                    `json:"note"`
	Points    []harness.ServerScalePoint `json:"points"`
	// Scaling1ToMax is virtual aggregate throughput at the largest
	// shard count over the 1-shard baseline (the acceptance gate
	// compares 1 → 8).
	Scaling map[string]float64 `json:"scaling"`
}

func runServerBench() {
	var counts []int
	for _, f := range strings.Split(*serverShards, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -server-shards entry %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		fmt.Fprintln(os.Stderr, "-server-shards is empty")
		os.Exit(2)
	}
	cfg := harness.ServerScaleConfig{
		ShardCounts: counts,
		Ops:         *ops,
		ValueSize:   *valueSize,
		Workers:     *serverWorkers,
		Conns:       *serverConns,
		Seed:        *seed,
	}
	fmt.Printf("\nServer scaling: fillrandom over loopback TCP, %d ops, %d B values, %d workers / %d conns\n",
		*ops, *valueSize, cfg.Workers, cfg.Conns)
	fmt.Printf("%-8s%14s%14s%12s%10s%10s%10s\n",
		"Shards", "virt ops/s", "wall ops/s", "virt sec", "p50 µs", "p99 µs", "p999 µs")
	points, err := harness.RunServerScale(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	byShards := map[int]float64{}
	for _, p := range points {
		byShards[p.Shards] = p.VirtualAggOpsPerSec
		fmt.Printf("%-8d%14.0f%14.0f%12.3f%10.1f%10.1f%10.1f\n",
			p.Shards, p.VirtualAggOpsPerSec, p.WallOpsPerSec, p.VirtualSec, p.P50Us, p.P99Us, p.P999Us)
	}
	scaling := map[string]float64{}
	if base, ok := byShards[1]; ok && base > 0 {
		for _, p := range points {
			if p.Shards != 1 {
				scaling[fmt.Sprintf("1_to_%d", p.Shards)] = byShards[p.Shards] / base
			}
		}
	}
	for k, v := range scaling {
		fmt.Printf("virtual scaling %s: %.2fx\n", k, v)
	}
	if *jsonOut != "" {
		doc := serverBenchDoc{
			Benchmark: "server-scale",
			Workload:  "fillrandom",
			Ops:       *ops,
			ValueSize: *valueSize,
			Workers:   cfg.Workers,
			Conns:     cfg.Conns,
			Note: "virtual_agg_ops_per_sec is simulated-hardware throughput (paper methodology: " +
				"per-shard SSD+ext4 virtual clocks); wall_ops_per_sec is this host's Go runtime and " +
				"flattens at its core count",
			Points:  points,
			Scaling: scaling,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

func main() {
	flag.Parse()
	if *records < 1 || *ops < 1 || *threads < 1 || *valueSize < 1 {
		fmt.Fprintln(os.Stderr, "-records, -ops, -threads and -value must be positive")
		os.Exit(2)
	}
	if *serverBench {
		runServerBench()
		return
	}
	telemetryOn := *telemetry || *listen != ""
	var (
		expoMu sync.Mutex
		expo   obs.Exposition
	)
	if *listen != "" {
		srv, addr, err := obs.ServeDynamic(*listen, func() obs.Exposition {
			expoMu.Lock()
			defer expoMu.Unlock()
			return expo
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s/\n", addr)
	}
	fig := "5a"
	if *threads > 1 {
		fig = "5b"
	}
	fmt.Printf("\nFigure %s: YCSB, time per operation (µs), %d records / %d ops, %d thread(s)\n",
		fig, *records, *ops, *threads)
	fmt.Printf("%-14s", "Variant")
	for _, p := range harness.YCSBPhases {
		fmt.Printf("%9s", p)
	}
	fmt.Println()
	for _, v := range policy.All {
		var sink obs.Sink
		if telemetryOn {
			sink.Metrics = obs.NewRegistry()
			sink.Telemetry = obs.NewTelemetry(sink.Metrics, 0, 0)
		}
		onStore := func(st *harness.Store) {
			expoMu.Lock()
			expo = st.Exposition()
			expoMu.Unlock()
		}
		rows, err := harness.RunFig5Observed(v, *records, *ops, *valueSize, *threads, *seed, sink, onStore)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s", v)
		for _, r := range rows {
			fmt.Printf("%9.2f", r.Result.MicrosPerOp)
		}
		fmt.Println()
	}
}
