// Command ycsbbench regenerates the paper's macro-benchmark results:
// Figure 5a (YCSB, single thread) and Figure 5b (four threads). The
// phases run in the paper's recommended order — Load-A, A, B, C, F, D,
// Load-E, E — with the Load phases clearing the data set.
//
// Usage:
//
//	ycsbbench -threads 1                 # Figure 5a
//	ycsbbench -threads 4                 # Figure 5b
//	ycsbbench -records 200000 -ops 50000 # scale (paper: 50M / 10M)
package main

import (
	"flag"
	"fmt"
	"os"

	"noblsm/internal/harness"
	"noblsm/internal/policy"
)

var (
	records   = flag.Int64("records", 100_000, "records per load phase (paper: 50M)")
	ops       = flag.Int64("ops", 20_000, "requests per workload phase (paper: 10M)")
	threads   = flag.Int("threads", 1, "client threads (paper: 1 for Fig 5a, 4 for Fig 5b)")
	valueSize = flag.Int("value", 1024, "value size in bytes")
	seed      = flag.Int64("seed", 42, "workload seed")
)

func main() {
	flag.Parse()
	if *records < 1 || *ops < 1 || *threads < 1 || *valueSize < 1 {
		fmt.Fprintln(os.Stderr, "-records, -ops, -threads and -value must be positive")
		os.Exit(2)
	}
	fig := "5a"
	if *threads > 1 {
		fig = "5b"
	}
	fmt.Printf("\nFigure %s: YCSB, time per operation (µs), %d records / %d ops, %d thread(s)\n",
		fig, *records, *ops, *threads)
	fmt.Printf("%-14s", "Variant")
	for _, p := range harness.YCSBPhases {
		fmt.Printf("%9s", p)
	}
	fmt.Println()
	for _, v := range policy.All {
		rows, err := harness.RunFig5(v, *records, *ops, *valueSize, *threads, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s", v)
		for _, r := range rows {
			fmt.Printf("%9.2f", r.Result.MicrosPerOp)
		}
		fmt.Println()
	}
}
