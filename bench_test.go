package noblsm

// This file regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark drives the experiment
// harness at a scaled operation count (flag-free; the cmd/ tools
// expose flags for larger runs) and reports the paper's metric —
// virtual µs per operation — as the custom metric "vus/op", alongside
// the sync counters where the paper tabulates them. Wall-clock ns/op
// is meaningless here (the stack runs in virtual time); read vus/op.
//
// Mapping:
//
//	BenchmarkFig2aWriteStrategies  — Figure 2a (Async/Direct/Sync)
//	BenchmarkFig2bSyncImpact       — Figure 2b (table size × syncs)
//	BenchmarkFig4aFillrandom       — Figure 4a
//	BenchmarkFig4bOverwrite        — Figure 4b
//	BenchmarkFig4cReadseq          — Figure 4c
//	BenchmarkFig4dReadrandom       — Figure 4d
//	BenchmarkTable1SyncCounts      — Table 1
//	BenchmarkFig5aYCSBSingle       — Figure 5a (1 thread)
//	BenchmarkFig5bYCSBFour         — Figure 5b (4 threads)
//	BenchmarkConsistencyPowerCut   — Section 5.2 consistency test
//	BenchmarkAblation*             — design-choice ablations (DESIGN.md §5)

import (
	"fmt"
	"testing"

	"noblsm/internal/dbbench"
	"noblsm/internal/harness"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

const (
	benchOps     = 30_000 // per workload phase (paper: 10M)
	benchRecords = 30_000 // YCSB load size (paper: 50M)
	benchSeed    = 42
)

// benchValueSizes are the paper's Figure 4 x-axis points. Benchmarks
// run the 1 KB point by default and all five under -benchtime with
// the full suite; keeping one size per run keeps `go test -bench=.`
// minutes-fast while the cmd tools sweep everything.
var benchValueSizes = []int{1024}

func BenchmarkFig2aWriteStrategies(b *testing.B) {
	for _, totalMB := range []int64{256, 512} { // scaled 4 GB / 8 GB
		b.Run(fmt.Sprintf("total=%dMB", totalMB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := harness.RunFig2a(totalMB<<20, 2<<20)
				for _, r := range rows {
					b.ReportMetric(r.Elapsed.Seconds(), "vsec_"+r.Strategy)
				}
			}
		})
	}
}

func BenchmarkFig2bSyncImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig2b(benchOps, 1024, 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			mode := "nosync"
			if r.Synced {
				mode = "sync"
			}
			b.ReportMetric(r.Elapsed.Seconds(),
				fmt.Sprintf("vsec_%s_%dMB_%s", r.Workload, r.PaperTable>>20, mode))
		}
	}
}

// benchFig4 runs the db_bench chain for every variant and reports the
// requested workload's µs/op per variant.
func benchFig4(b *testing.B, workload string) {
	for _, size := range benchValueSizes {
		b.Run(fmt.Sprintf("value=%dB", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := harness.RunFig4(policy.All, benchOps, size, 1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Workload == workload {
						b.ReportMetric(r.Result.MicrosPerOp, "vus_"+string(r.Variant))
					}
				}
			}
		})
	}
}

func BenchmarkFig4aFillrandom(b *testing.B) { benchFig4(b, dbbench.FillRandom) }
func BenchmarkFig4bOverwrite(b *testing.B)  { benchFig4(b, dbbench.Overwrite) }
func BenchmarkFig4cReadseq(b *testing.B)    { benchFig4(b, dbbench.ReadSeq) }
func BenchmarkFig4dReadrandom(b *testing.B) { benchFig4(b, dbbench.ReadRandom) }

func BenchmarkTable1SyncCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable1(policy.All, benchOps, 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Syncs), "syncs_"+string(r.Variant))
			b.ReportMetric(float64(r.BytesSynced)/(1<<20), "syncedMB_"+string(r.Variant))
		}
	}
}

func benchFig5(b *testing.B, threads int) {
	// One representative write-heavy and one read-heavy phase per
	// variant keep the benchmark minutes-fast; cmd/ycsbbench runs the
	// full eight-phase sequence.
	for i := 0; i < b.N; i++ {
		for _, v := range []policy.Variant{policy.LevelDB, policy.BoLT, policy.NobLSM} {
			rows, err := harness.RunFig5(v, benchRecords, benchOps, 1024, threads, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				if r.Phase == "Load-A" || r.Phase == "A" || r.Phase == "C" {
					b.ReportMetric(r.Result.MicrosPerOp, fmt.Sprintf("vus_%s_%s", r.Variant, r.Phase))
				}
			}
		}
	}
}

func BenchmarkFig5aYCSBSingle(b *testing.B) { benchFig5(b, 1) }
func BenchmarkFig5bYCSBFour(b *testing.B)   { benchFig5(b, 4) }

func BenchmarkConsistencyPowerCut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, v := range []policy.Variant{policy.LevelDB, policy.NobLSM} {
			res, err := harness.RunConsistencyTest(v, benchOps, 1024, benchOps*3/4, benchSeed+int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if !res.Recovered || !res.SSTablesIntact {
				b.Fatalf("%v failed the power-cut test: %+v", v, res)
			}
			b.ReportMetric(float64(res.KeysLost), "lost_"+string(v))
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationPollInterval sweeps NobLSM's is_committed polling
// cadence relative to the journal commit interval. The paper matches
// the two at 5 s; polling faster burns syscalls without observing new
// commits, polling slower retains shadow files longer.
func BenchmarkAblationPollInterval(b *testing.B) {
	base := harness.ScaledOptions(benchOps, 1024, harness.PaperTable64MB)
	commit := base.PollInterval
	for _, mult := range []struct {
		name string
		m    vclock.Duration
		d    vclock.Duration
	}{
		{"poll=commit/5", 1, 5},
		{"poll=commit", 1, 1},
		{"poll=5xcommit", 5, 1},
	} {
		b.Run(mult.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := base
				o.PollInterval = commit * mult.m / mult.d
				tl := vclock.NewTimeline(0)
				st, err := harness.NewStoreWithCommit(tl, policy.NobLSM, o, commit)
				if err != nil {
					b.Fatal(err)
				}
				res, err := harness.RunDBBench(st, tl.Now(), dbbench.FillRandom, benchOps, 1024, 1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MicrosPerOp, "vus/op")
				b.ReportMetric(float64(res.Tracker.SyscallChecks), "is_committed_calls")
				b.ReportMetric(float64(res.Tracker.Resolved), "deps_resolved")
			}
		})
	}
}

// BenchmarkAblationSyncMinor toggles NobLSM's one remaining sync (the
// L0 table of a minor compaction). Without it the design degenerates
// to the volatile store: faster, but the WAL deletion is no longer
// anchored to a durable L0 table.
func BenchmarkAblationSyncMinor(b *testing.B) {
	for _, v := range []policy.Variant{policy.NobLSM, policy.Volatile} {
		b.Run(string(v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tl := vclock.NewTimeline(0)
				st, err := harness.NewStore(tl, v, harness.ScaledOptions(benchOps, 1024, harness.PaperTable64MB))
				if err != nil {
					b.Fatal(err)
				}
				res, err := harness.RunDBBench(st, tl.Now(), dbbench.FillRandom, benchOps, 1024, 1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MicrosPerOp, "vus/op")
				b.ReportMetric(float64(res.Syncs), "syncs")
			}
		})
	}
}

// BenchmarkAblationTableSize sweeps the SSTable size for LevelDB and
// NobLSM (the Section 3 observation: large tables alone cannot remove
// the sync cost).
func BenchmarkAblationTableSize(b *testing.B) {
	for _, paperTable := range []int64{harness.PaperTable2MB, 16 << 20, harness.PaperTable64MB} {
		for _, v := range []policy.Variant{policy.LevelDB, policy.NobLSM} {
			b.Run(fmt.Sprintf("%s/table=%dMB", v, paperTable>>20), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tl := vclock.NewTimeline(0)
					st, err := harness.NewStore(tl, v, harness.ScaledOptions(benchOps, 1024, paperTable))
					if err != nil {
						b.Fatal(err)
					}
					res, err := harness.RunDBBench(st, tl.Now(), dbbench.FillRandom, benchOps, 1024, 1, benchSeed)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.MicrosPerOp, "vus/op")
				}
			})
		}
	}
}
